"""Wall-clock benchmarking of the vectorized query kernels.

Everything else in this repository measures *simulated* I/O cost — the
paper's currency.  This package measures real CPU seconds: it times
tree construction, window/point-query batches, the full spatial join
and a mixed workload run, under both the vectorized kernels and the
``REPRO_SCALAR_KERNELS`` fallback (:mod:`repro.core.kernels`), and
writes the medians, machine-normalized scores and speedups to
``BENCH_<bench>.json`` so future PRs have a perf trajectory.  Three
benches exist: ``query_kernels`` (per-layer kernel scenarios),
``flat_tree`` (the structure-of-arrays snapshot layer and the
organization-level batch path) and ``traffic`` (the virtual-clock
scheduler path under generated arrival traffic, old vs new clock).

Run them with ``python -m repro.eval bench [--bench flat_tree]``.
"""

from repro.bench.harness import (
    BENCH_NAME,
    BENCHES,
    calibrate,
    main,
    run_bench,
    run_traffic_bench,
    write_json,
)

__all__ = [
    "BENCH_NAME",
    "BENCHES",
    "calibrate",
    "main",
    "run_bench",
    "run_traffic_bench",
    "write_json",
]
