"""The wall-clock benchmark harness (``python -m repro.eval bench``).

Three benches share the harness (select with ``--bench``):

* ``query_kernels`` (default, ``BENCH_query_kernels.json``) — the
  per-layer scenarios below;
* ``flat_tree`` (``BENCH_flat_tree.json``) — the structure-of-arrays
  snapshot layer: whole-tree batched filter steps plus the
  organization-level batch path end-to-end (where the org scenarios
  report ``(answers, io_ms)`` and the harness's outcome-equality
  assertion doubles as a pricing-equivalence check between the merged
  batch plans and the per-query scalar path);
* ``traffic`` (``BENCH_traffic.json``) — the virtual-clock scheduler
  path under generated traffic: for each session count it drives an
  open-loop Poisson run end-to-end (throughput, interactive p99),
  records the exact ``(disk, at, work)`` dispatch sequence, and
  replays that sequence through the bisect-indexed
  :class:`~repro.iosched.scheduler.VirtualClock` and the historical
  O(n)-scan :class:`~repro.iosched.scheduler.IntervalListClock` —
  timing only the clock, asserting bit-identical placements, and
  reporting ``clock_speedup = old_replay_s / new_replay_s``.  Above
  ``TRAFFIC_OLD_CLOCK_CAP`` sessions the old-clock replay is skipped
  (its quadratic scan would take longer than every other bench
  combined) and only the new clock is timed.

Methodology
-----------
* Every scenario is a deterministic callable timed with
  ``time.perf_counter``; the reported figure is the **median of k**
  repetitions (after one untimed warm-up), so one scheduler hiccup
  cannot skew a number.
* Scenarios run under both kernel modes (vectorized default, then the
  ``REPRO_SCALAR_KERNELS`` scalar fallback) and the harness *asserts*
  that both modes produce the same outcome (result counts, node
  counts, join cardinality) before reporting ``speedup =
  scalar_median / vectorized_median``.
* Raw seconds are machine-dependent, so every median is also reported
  **normalized** against a calibration loop — a fixed chunk of pure
  Python arithmetic timed on the same machine in the same process.
  Normalized scores (``median_s / calibration_s``) are comparable
  across machines of different speeds; speedups are dimensionless
  anyway.

Scenarios
---------
``construction``
    Build a fresh in-memory R*-tree from the map's MBRs (exercises
    ChooseSubtree and the vectorized split distributions).
``window_batch`` / ``point_batch``
    The R*-tree *filter* step over a query batch via
    :meth:`~repro.rtree.rstar.RStarTree.window_query_batch` — one
    frontier-at-a-time traversal of the flat snapshot (no I/O pricing,
    no refinement).  The scalar fallback loops the per-query
    entry-at-a-time path.
``window_org`` / ``point_org``
    Single queries looped end-to-end through the cluster organization
    (filter + transfer pricing + exact refinement), for context on how
    much of the serving path the kernels are; the *batched* org path
    has its own scenarios in the ``flat_tree`` bench.
``join``
    The complete multi-step spatial join with exact evaluation
    (synchronized traversal, candidate generation, batched refinement
    prefilter).
``workload``
    A mixed window/point/join stream through the shared buffer pool
    (:meth:`~repro.database.SpatialDatabase.run_workload`).
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from typing import Callable

from repro.core import kernels

BENCH_NAME = "query_kernels"
DEFAULT_OUTPUT = f"BENCH_{BENCH_NAME}.json"

SCENARIOS = (
    "construction",
    "window_batch",
    "point_batch",
    "window_org",
    "point_org",
    "join",
    "workload",
)
"""query_kernels scenario names, in run order (must match the builder)."""

FLAT_SCENARIOS = (
    "window_filter",
    "point_filter",
    "window_org",
    "point_org",
)
"""flat_tree scenario names, in run order (must match the builder)."""

TRAFFIC_SESSION_COUNTS = (1_000, 10_000, 100_000)
"""Default session counts the traffic bench sweeps."""

TRAFFIC_OLD_CLOCK_CAP = 20_000
"""Largest session count replayed through the O(n)-scan
:class:`~repro.iosched.scheduler.IntervalListClock`; beyond it the
quadratic scan dominates the whole bench's wall clock, so only the
bisect-indexed clock is timed."""

_CALIBRATION_N = 1_000_000


def _calibration_loop(n: int = _CALIBRATION_N) -> int:
    """A fixed chunk of pure-Python integer arithmetic."""
    acc = 0
    for i in range(n):
        acc += i * i
    return acc


def calibrate(repeat: int = 3) -> float:
    """Median seconds of the calibration loop on this machine."""
    times = []
    _calibration_loop(10_000)  # warm-up
    for _ in range(repeat):
        start = time.perf_counter()
        _calibration_loop()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _time_median(fn: Callable[[], object], repeat: int) -> tuple[float, object]:
    """Median wall seconds of ``fn`` over ``repeat`` runs (one untimed
    warm-up first); returns ``(median_s, last_result)``."""
    fn()
    times = []
    result: object = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


# ----------------------------------------------------------------------
# scenario construction
# ----------------------------------------------------------------------
def _object_point_workload(
    objects, n_queries: int, seed: int
) -> list[tuple[float, float]]:
    """Point queries sampled from actual object coordinates.

    Window centers (the paper's Section 5.5 convention) almost never lie
    *on* a polyline, so a point workload built from them measures the
    empty-result path only.  For the benches we instead sample a vertex
    of a randomly chosen object — every query has at least one answer,
    so the refinement kernels do real work.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(objects), n_queries)
    points: list[tuple[float, float]] = []
    for pick in picks:
        vertices = objects[int(pick)].geometry.vertices
        x, y = vertices[int(rng.integers(0, len(vertices)))]
        points.append((float(x), float(y)))
    return points


def _build_scenarios(scale: float, seed: int, series: str, queries: int):
    """Prepare data and return ``[(name, callable, outcome_fn)]``.

    ``outcome_fn`` maps a scenario result to a small comparable value —
    the harness asserts it is identical across kernel modes.
    """
    from repro.data.tiger import generate_map
    from repro.data.workload import window_workload
    from repro.database import SpatialDatabase
    from repro.eval.config import ExperimentConfig
    from repro.rtree.rstar import RStarTree
    from repro.workload.streams import mixed_stream

    config = ExperimentConfig(scale=scale, seed=seed)
    spec = config.spec(series)
    objects = generate_map(spec, seed=config.seed)
    windows = window_workload(
        objects, 1e-3, n_queries=queries, seed=config.seed + 7
    )
    points = _object_point_workload(objects, queries, config.seed + 9)

    # One shared database pair for the I/O-priced scenarios (built once,
    # under the default kernels; both kernel modes build bit-identical
    # trees, so sharing one build does not bias either mode).
    db = SpatialDatabase(smax_bytes=spec.smax_bytes, name="r")
    db.build(objects)
    other_key = f"{series[:-1]}2" if series.endswith("1") else series
    other_spec = config.spec(other_key)
    other = db.attach("s", smax_bytes=other_spec.smax_bytes)
    other.build(generate_map(other_spec, seed=config.seed, id_offset=10_000_000))

    # A bare in-memory tree for the pure filter-step batches.
    tree = RStarTree()
    for obj in objects:
        tree.insert(obj.oid, obj.mbr)

    stream = mixed_stream(
        objects,
        n_windows=max(10, queries // 2),
        n_points=max(10, queries // 2),
        join_with=other,
        seed=config.seed + 17,
    )

    def construction():
        fresh = RStarTree()
        for obj in objects:
            fresh.insert(obj.oid, obj.mbr)
        return fresh.node_count()

    def window_batch():
        return sum(len(r) for r in tree.window_query_batch(windows))

    def point_batch():
        return sum(len(r) for r in tree.point_query_batch(points))

    def window_org():
        return sum(len(db.storage.window_query(w).objects) for w in windows)

    def point_org():
        return sum(len(db.storage.point_query(x, y).objects) for x, y in points)

    join_pages = config.join_buffer(1600)

    def join():
        result = db.join(other, buffer_pages=join_pages, evaluate_exact=True)
        return (result.candidate_pairs, result.result_pairs)

    def workload():
        report = db.run_workload(stream, buffer_pages=400)
        return sum(p.results for p in report.phases)

    identity = lambda outcome: outcome  # noqa: E731
    return [
        ("construction", construction, identity),
        ("window_batch", window_batch, identity),
        ("point_batch", point_batch, identity),
        ("window_org", window_org, identity),
        ("point_org", point_org, identity),
        ("join", join, identity),
        ("workload", workload, identity),
    ]


def _build_flat_scenarios(scale: float, seed: int, series: str, queries: int):
    """The flat-tree bench: batched filter steps on a bare tree, then
    the organization-level batch path end-to-end.

    The ``*_org`` outcomes are ``(answers, io_ms)`` tuples compared
    *exactly* (no rounding) across kernel modes: the vectorized runs go
    through the flat snapshot and merged per-query access plans, the
    scalar runs loop the single-query path — so equality certifies the
    batch path's pricing, not just its result sets.  (The untimed
    warm-up run leaves the disk head — and the buffer pool — in the
    same steady state for every timed run, making the sums repeatable.)
    """
    from repro.data.tiger import generate_map
    from repro.data.workload import window_workload
    from repro.database import SpatialDatabase
    from repro.eval.config import ExperimentConfig
    from repro.rtree.rstar import RStarTree

    config = ExperimentConfig(scale=scale, seed=seed)
    spec = config.spec(series)
    objects = generate_map(spec, seed=config.seed)
    windows = window_workload(
        objects, 1e-3, n_queries=queries, seed=config.seed + 7
    )
    points = _object_point_workload(objects, queries, config.seed + 9)

    db = SpatialDatabase(smax_bytes=spec.smax_bytes, name="flat")
    db.build(objects)

    tree = RStarTree()
    for obj in objects:
        tree.insert(obj.oid, obj.mbr)
    tree.flat_snapshot()  # build once, outside the timed region

    def window_filter():
        return sum(len(r) for r in tree.window_query_batch(windows))

    def point_filter():
        return sum(len(r) for r in tree.point_query_batch(points))

    def window_org():
        answers = 0
        io_ms = 0.0
        for result in db.storage.window_query_batch(windows):
            answers += len(result.objects)
            io_ms += result.io.total_ms
        return (answers, io_ms)

    def point_org():
        answers = 0
        io_ms = 0.0
        for result in db.storage.point_query_batch(points):
            answers += len(result.objects)
            io_ms += result.io.total_ms
        return (answers, io_ms)

    identity = lambda outcome: outcome  # noqa: E731
    return [
        ("window_filter", window_filter, identity),
        ("point_filter", point_filter, identity),
        ("window_org", window_org, identity),
        ("point_org", point_org, identity),
    ]


# ----------------------------------------------------------------------
# the traffic bench (virtual-clock scheduler path)
# ----------------------------------------------------------------------
def _recording_clock():
    """A :class:`~repro.iosched.scheduler.VirtualClock` that records
    every ``(disk, at, work)`` reservation it services, so the exact
    dispatch sequence of an end-to-end traffic run can be replayed
    through other clock implementations."""
    from repro.iosched.scheduler import VirtualClock

    class RecordingClock(VirtualClock):
        __slots__ = ("dispatches",)

        def __init__(self):
            super().__init__()
            self.dispatches: list[tuple[int, float, float]] = []

        def reserve(self, disk: int, at: float, work: float) -> float:
            self.dispatches.append((disk, at, work))
            return super().reserve(disk, at, work)

    return RecordingClock()


def _replay_dispatches(clock_cls, dispatches, n_disks: int):
    """Feed a recorded dispatch sequence through a fresh clock, timing
    only the reservation calls; returns ``(seconds, begins, clock)``."""
    clock = clock_cls()
    clock._ensure(n_disks)
    reserve = clock.reserve
    start = time.perf_counter()
    begins = [reserve(disk, at, work) for disk, at, work in dispatches]
    return time.perf_counter() - start, begins, clock


def run_traffic_bench(
    sessions: tuple[int, ...] | list[int] | None = None,
    scale: float = 0.05,
    seed: int = 1994,
    series: str = "A-1",
    repeat: int = 3,
    rate_per_s: float = 20.0,
    buffer_pages: int = 64,
    disks: int = 4,
    old_clock_cap: int = TRAFFIC_OLD_CLOCK_CAP,
) -> dict:
    """The virtual-clock scheduler-path bench; returns the JSON-ready
    result document.

    The small ``buffer_pages`` pool and moderate ``rate_per_s`` put the
    disks around 60% utilization — the regime where idle gaps and busy
    intervals interleave, the per-disk interval lists fragment into
    thousands of entries, and the historical clock's linear scans go
    quadratic over the run.  (Overload is *not* the interesting case
    for the clock: back-to-back tail placements merge into a handful of
    intervals and both implementations are O(1) there.)
    """
    from repro.data.tiger import generate_map
    from repro.database import SpatialDatabase
    from repro.eval.config import ExperimentConfig
    from repro.iosched.scheduler import IntervalListClock, VirtualClock
    from repro.workload.traffic import make_traffic

    counts = tuple(sessions) if sessions else TRAFFIC_SESSION_COUNTS
    if any(n <= 0 for n in counts):
        raise ValueError(f"session counts must be positive: {counts}")
    calibration_s = calibrate()
    config = ExperimentConfig(scale=scale, seed=seed)
    spec = config.spec(series)
    objects = generate_map(spec, seed=config.seed)

    doc: dict = {
        "name": "traffic",
        "created_unix": int(time.time()),
        "config": {
            "scale": scale,
            "seed": seed,
            "series": series,
            "sessions": list(counts),
            "rate_per_s": rate_per_s,
            "buffer_pages": buffer_pages,
            "disks": disks,
            "repeat": repeat,
            "old_clock_cap": old_clock_cap,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "calibration_s": calibration_s,
        },
        "runs": {},
    }
    try:
        import numpy

        doc["machine"]["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        pass

    for n in counts:
        traffic = make_traffic(
            objects,
            n,
            arrival="poisson",
            rate_per_s=rate_per_s,
            seed=config.seed + 29,
        )
        db = SpatialDatabase(
            smax_bytes=spec.smax_bytes,
            n_disks=disks,
            placement="spatial",
            scheduler="overlap",
        )
        db.build(objects)
        recorder = _recording_clock()
        db.scheduler.clock = recorder
        start = time.perf_counter()
        report = db.run_traffic(traffic, buffer_pages=buffer_pages)
        run_s = time.perf_counter() - start
        dispatches = recorder.dispatches

        new_times = []
        new_outcome = None
        for _ in range(repeat):
            elapsed, begins, clock = _replay_dispatches(
                VirtualClock, dispatches, disks
            )
            new_times.append(elapsed)
            new_outcome = (begins, clock._busy, clock.disk_free)
        new_replay_s = statistics.median(new_times)

        old_replay_s = None
        clock_speedup = None
        if n <= old_clock_cap:
            old_times = []
            old_outcome = None
            for _ in range(repeat):
                elapsed, begins, clock = _replay_dispatches(
                    IntervalListClock, dispatches, disks
                )
                old_times.append(elapsed)
                old_outcome = (begins, clock._busy, clock.disk_free)
            old_replay_s = statistics.median(old_times)
            # The equivalence canary: both clocks must place every
            # reservation of the recorded run identically.
            if old_outcome != new_outcome:
                raise AssertionError(
                    f"clock implementations disagree on placements at "
                    f"{n} sessions"
                )
            clock_speedup = (
                old_replay_s / new_replay_s
                if new_replay_s > 0
                else float("inf")
            )

        interactive = report.traffic_class("interactive")
        doc["runs"][str(n)] = {
            "sessions": n,
            "run_s": run_s,
            "run_norm": run_s / calibration_s,
            "reserves": len(dispatches),
            "intervals_max": max(
                (len(busy) for busy in recorder._busy), default=0
            ),
            "makespan_ms": report.makespan_ms,
            "throughput_per_s": report.throughput_per_s,
            "interactive_p99_ms": interactive.p99_ms if interactive else 0.0,
            "new_replay_s": new_replay_s,
            "old_replay_s": old_replay_s,
            "clock_speedup": clock_speedup,
        }
    return doc


def format_traffic_report(doc: dict) -> str:
    from repro.eval.report import format_table

    rows = []
    for run in doc["runs"].values():
        old_ms = (
            f"{run['old_replay_s'] * 1000:.1f}"
            if run["old_replay_s"] is not None
            else "-"
        )
        speedup = (
            f"{run['clock_speedup']:.1f}x"
            if run["clock_speedup"] is not None
            else "-"
        )
        rows.append(
            (
                run["sessions"],
                f"{run['run_s']:.2f}",
                run["reserves"],
                run["intervals_max"],
                f"{run['throughput_per_s']:.1f}",
                f"{run['interactive_p99_ms']:.1f}",
                f"{run['new_replay_s'] * 1000:.1f}",
                old_ms,
                speedup,
            )
        )
    return format_table(
        (
            "sessions",
            "run s",
            "reserves",
            "intervals",
            "sessions/s",
            "int p99 ms",
            "new clock ms",
            "old clock ms",
            "speedup",
        ),
        rows,
        title=f"traffic scheduler path (replay median of "
        f"{doc['config']['repeat']}, calibration "
        f"{doc['machine']['calibration_s'] * 1000:.1f} ms)",
    )


BENCHES: dict = {
    "query_kernels": (SCENARIOS, _build_scenarios, "query-kernel"),
    "flat_tree": (FLAT_SCENARIOS, _build_flat_scenarios, "flat-tree"),
    "traffic": (None, None, "traffic"),
}
"""Bench name -> (scenario names, builder, report-title prefix); the
``traffic`` bench has its own runner (:func:`run_traffic_bench`) instead
of the kernel-mode scenario loop."""


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
def run_bench(
    scale: float = 0.05,
    seed: int = 1994,
    series: str = "A-1",
    queries: int = 300,
    repeat: int = 5,
    only: list[str] | None = None,
    bench: str = BENCH_NAME,
    sessions: list[int] | None = None,
) -> dict:
    """Measure every scenario under both kernel modes; returns the
    JSON-ready result document.  The ``traffic`` bench delegates to
    :func:`run_traffic_bench` (``sessions`` selects its sweep; ``only``
    and ``queries`` do not apply)."""
    if bench not in BENCHES:
        raise ValueError(
            f"unknown bench '{bench}'; valid: {list(BENCHES)}"
        )
    if bench == "traffic":
        if only:
            raise ValueError(
                "the traffic bench has no scenario selection; "
                "use sessions= to pick its sweep"
            )
        return run_traffic_bench(
            sessions=sessions,
            scale=scale,
            seed=seed,
            series=series,
            repeat=repeat,
        )
    names, builder, _title = BENCHES[bench]
    if only:
        unknown = [name for name in only if name not in names]
        if unknown:
            raise ValueError(
                f"unknown bench scenarios {unknown}; valid: {list(names)}"
            )
    calibration_s = calibrate()
    scenarios = builder(scale, seed, series, queries)
    assert tuple(s[0] for s in scenarios) == names
    if only:
        scenarios = [s for s in scenarios if s[0] in only]

    doc: dict = {
        "name": bench,
        "created_unix": int(time.time()),
        "config": {
            "scale": scale,
            "seed": seed,
            "series": series,
            "queries": queries,
            "repeat": repeat,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "calibration_s": calibration_s,
        },
        "scenarios": {},
    }
    try:
        import numpy

        doc["machine"]["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        pass

    for name, fn, outcome_fn in scenarios:
        with kernels.scalar_kernels(False):
            vector_s, vector_result = _time_median(fn, repeat)
        with kernels.scalar_kernels(True):
            scalar_s, scalar_result = _time_median(fn, repeat)
        vector_outcome = outcome_fn(vector_result)
        scalar_outcome = outcome_fn(scalar_result)
        if vector_outcome != scalar_outcome:
            raise AssertionError(
                f"kernel modes disagree on '{name}': "
                f"vectorized={vector_outcome!r} scalar={scalar_outcome!r}"
            )
        doc["scenarios"][name] = {
            "vectorized_s": vector_s,
            "scalar_s": scalar_s,
            "speedup": scalar_s / vector_s if vector_s > 0 else float("inf"),
            "vectorized_norm": vector_s / calibration_s,
            "scalar_norm": scalar_s / calibration_s,
            "outcome": _jsonable(vector_outcome),
        }
    return doc


def _jsonable(value):
    if isinstance(value, tuple):
        return list(value)
    return value


def write_json(doc: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(doc: dict) -> str:
    from repro.eval.report import format_table

    if doc["name"] == "traffic":
        return format_traffic_report(doc)
    rows = [
        (
            name,
            f"{s['vectorized_s'] * 1000:.1f}",
            f"{s['scalar_s'] * 1000:.1f}",
            f"{s['speedup']:.2f}x",
            f"{s['vectorized_norm']:.3f}",
        )
        for name, s in doc["scenarios"].items()
    ]
    prefix = BENCHES.get(doc["name"], (None, None, doc["name"]))[2]
    return format_table(
        ("scenario", "vectorized ms", "scalar ms", "speedup", "normalized"),
        rows,
        title=f"{prefix} wall clock (median of {doc['config']['repeat']}, "
        f"calibration {doc['machine']['calibration_s'] * 1000:.1f} ms)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval bench",
        description="Time the vectorized query kernels against the "
        "scalar fallback and write BENCH_<bench>.json.",
    )
    parser.add_argument(
        "--bench", type=str, default=BENCH_NAME, choices=sorted(BENCHES),
        help=f"which bench to run (default {BENCH_NAME})",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset scale in (0, 1] (default 0.05 — large enough "
        "that batch medians are stable; the speedups are what matters)",
    )
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument(
        "--series", type=str, default="A-1", help="Table 1 series (default A-1)"
    )
    parser.add_argument(
        "--queries", type=int, default=300,
        help="windows and points per batch (default 300)",
    )
    parser.add_argument(
        "--repeat", type=int, default=5,
        help="repetitions per scenario; the median is reported (default 5)",
    )
    parser.add_argument(
        "--only", type=str, default=None,
        help="comma-separated scenario names to run",
    )
    parser.add_argument(
        "--sessions", type=str, default=None,
        help="traffic bench only: comma-separated session counts "
        f"(default {','.join(str(n) for n in TRAFFIC_SESSION_COUNTS)})",
    )
    parser.add_argument(
        "--output", type=str, default=None, metavar="PATH",
        help="result JSON path (default BENCH_<bench>.json)",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    only = (
        [n.strip() for n in args.only.split(",") if n.strip()]
        if args.only
        else None
    )
    sessions = None
    if args.sessions:
        try:
            sessions = [
                int(n.strip()) for n in args.sessions.split(",") if n.strip()
            ]
        except ValueError:
            parser.error(f"--sessions needs integer counts: {args.sessions!r}")
    output = args.output or f"BENCH_{args.bench}.json"

    try:
        doc = run_bench(
            scale=args.scale,
            seed=args.seed,
            series=args.series,
            queries=args.queries,
            repeat=args.repeat,
            only=only,
            bench=args.bench,
            sessions=sessions,
        )
    except ValueError as exc:
        parser.error(str(exc))
    print(format_report(doc))
    write_json(doc, output)
    print(f"\n[bench: wrote {output}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
