"""Span tracing on the simulation's virtual clocks.

The tracer records nested spans — session -> operation -> AccessPlan ->
IORequest -> per-device service — stamped in *virtual milliseconds*, the
same unit every layer of the pipeline prices I/O in.  Two clock modes
cover the two schedulers:

``serial``
    The default.  The tracer keeps its own cumulative cursor
    (:attr:`Tracer.now_ms`) advanced by every priced device transfer, so
    a :class:`~repro.iosched.scheduler.SyncScheduler` run lays out as a
    single sequential timeline whose total width equals the run's device
    milliseconds.

``virtual``
    Switched on by the :class:`~repro.iosched.scheduler.OverlapScheduler`
    (or by :meth:`Tracer.use_virtual_clock`).  Span begin/end times come
    from the scheduler's :class:`~repro.iosched.scheduler.VirtualClock`:
    client-side spans carry issue/completion stamps, and device service
    spans are buffered per request (:meth:`Tracer.begin_pending`) and
    re-stamped onto the exact per-disk busy interval the clock placed the
    work in (:meth:`Tracer.place_pending`).

Tracing is **disabled by default** and the hot path must stay clean:
instrumented sites read the module attribute :data:`ACTIVE` and skip all
work when it is ``None`` — one global load plus an identity test, no
function call.  Pricing is never affected by tracing in either state.

Parentage is tracked through a stack of open spans: execution is
single-threaded even when virtual timelines overlap, so the span open at
the time a child begins *is* its causal parent.  Detached roots (client
sessions, background prefetch plans, flush) pass ``parent=None``
explicitly; ending a span out of stack order is tolerated (it is simply
removed from the stack), which keeps open spans intact across mid-run
stats resets.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "ACTIVE",
    "Instant",
    "Span",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "register_store_devices",
    "tracing",
    "uninstall_tracer",
]

_UNSET = object()


class Span:
    """One half-open interval ``[start_ms, end_ms]`` on a named track."""

    __slots__ = ("name", "cat", "track", "start_ms", "end_ms", "parent", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        start_ms: float,
        parent: "Span | None" = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.start_ms = start_ms
        self.end_ms: float | None = None
        self.parent = parent
        self.args = args

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = "open" if self.end_ms is None else f"{self.end_ms:.3f}"
        return (
            f"Span({self.name!r}, cat={self.cat!r}, track={self.track!r}, "
            f"[{self.start_ms:.3f}, {end}])"
        )


class Instant:
    """A zero-width marker event (admission admit, prefetch dispatch...)."""

    __slots__ = ("name", "cat", "track", "ts_ms", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        ts_ms: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.ts_ms = ts_ms
        self.args = args


class Tracer:
    """Collects spans and instants for one traced run."""

    __slots__ = (
        "label",
        "spans",
        "instants",
        "now_ms",
        "virtual",
        "virtual_now",
        "_stack",
        "_track",
        "_device_tracks",
        "_device_cursor",
        "_pending",
    )

    def __init__(self, label: str = "trace") -> None:
        self.label = label
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        #: cumulative serial-mode cursor: total priced device ms so far.
        self.now_ms = 0.0
        #: ``True`` once an overlap scheduler stamps virtual-clock times.
        self.virtual = False
        #: coarse "current virtual time" anchor used for events that are
        #: not individually stamped (fallback device spans, instants).
        self.virtual_now = 0.0
        self._stack: list[Span] = []
        self._track = "main"
        self._device_tracks: dict[int, str] = {}
        self._device_cursor: dict[str, float] = {}
        self._pending: list[tuple[Any, str, float, int]] | None = None

    # ------------------------------------------------------------------
    # clock & track context
    # ------------------------------------------------------------------
    def use_virtual_clock(self, on: bool) -> None:
        """Switch between serial cumulative time and virtual-clock stamps."""
        self.virtual = bool(on)

    def set_track(self, track: str) -> None:
        """Set the default track for subsequent client-side events."""
        self._track = track

    @property
    def current_track(self) -> str:
        return self._track

    def _now(self) -> float:
        return self.virtual_now if self.virtual else self.now_ms

    # ------------------------------------------------------------------
    # client-side spans
    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        cat: str = "span",
        track: str | None = None,
        ts: float | None = None,
        parent: "Span | None | object" = _UNSET,
        args: dict[str, Any] | None = None,
    ) -> Span:
        if parent is _UNSET:
            parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            cat,
            self._track if track is None else track,
            self._now() if ts is None else ts,
            parent=parent,  # type: ignore[arg-type]
            args=args,
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, ts: float | None = None) -> Span:
        end = self._now() if ts is None else ts
        # Zero-work requests can complete "before" their begin stamp was
        # rounded; clamp so durations stay non-negative.
        span.end_ms = max(end, span.start_ms)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "span",
        track: str | None = None,
        args: dict[str, Any] | None = None,
    ) -> Iterator[Span]:
        opened = self.begin(name, cat=cat, track=track, args=args)
        try:
            yield opened
        finally:
            self.end(opened)

    def instant(
        self,
        name: str,
        cat: str = "instant",
        track: str | None = None,
        ts: float | None = None,
        args: dict[str, Any] | None = None,
    ) -> Instant:
        mark = Instant(
            name,
            cat,
            self._track if track is None else track,
            self._now() if ts is None else ts,
            args=args,
        )
        self.instants.append(mark)
        return mark

    # ------------------------------------------------------------------
    # device service spans (called from DiskModel pricing)
    # ------------------------------------------------------------------
    def name_device(self, device: Any, track: str) -> None:
        """Assign a stable track name (``disk0``, ``tier.fast``...) to a device."""
        self._device_tracks[id(device)] = track

    def device_track(self, device: Any) -> str:
        track = self._device_tracks.get(id(device))
        if track is None:
            track = f"disk{len(self._device_tracks)}"
            self._device_tracks[id(device)] = track
        return track

    @property
    def device_tracks(self) -> tuple[str, ...]:
        return tuple(self._device_tracks.values())

    def device(self, device: Any, kind: str, start: int, npages: int, cost_ms: float) -> None:
        """Record one priced device transfer.

        Called by :meth:`repro.disk.model.DiskModel._transfer` (and
        ``charge``) whenever a tracer is installed.  In serial mode this
        also advances the tracer's cumulative clock — the serial timeline
        *is* the sum of priced work.  Inside an overlap request the
        record is buffered and later re-stamped by
        :meth:`place_pending` onto the virtual clock's busy interval.
        """
        if self._pending is not None:
            self._pending.append((device, kind, cost_ms, npages))
            return
        track = self.device_track(device)
        if not self.virtual:
            begin = self.now_ms
            self.now_ms = begin + cost_ms
        else:
            # Unbatched work under overlap (inserts, deletes, flush
            # residue): lay it out sequentially per device, never before
            # the current virtual time.
            begin = max(self.virtual_now, self._device_cursor.get(track, 0.0))
            self._device_cursor[track] = begin + cost_ms
        span = Span(kind, "device", track, begin, parent=self._stack[-1] if self._stack else None,
                    args={"start": start, "npages": npages})
        span.end_ms = begin + cost_ms
        self.spans.append(span)

    def begin_pending(self) -> None:
        """Start buffering device records for one overlap request."""
        self._pending = []

    def place_pending(self, begins: dict[Any, float]) -> None:
        """Stamp buffered device records onto the clock's placement.

        ``begins`` maps device objects to the begin time of the busy
        interval the :class:`VirtualClock` placed that device's work in;
        records for one device are laid out back-to-back from there, so
        the last record's end coincides with the interval's end.
        """
        pending, self._pending = self._pending, None
        if not pending:
            return
        cursor: dict[int, float] = {}
        for device, kind, cost_ms, npages in pending:
            track = self.device_track(device)
            key = id(device)
            begin = cursor.get(key)
            if begin is None:
                begin = begins.get(device)
                if begin is None:
                    begin = max(self.virtual_now, self._device_cursor.get(track, 0.0))
            span = Span(kind, "device", track, begin, parent=self._stack[-1] if self._stack else None,
                        args={"npages": npages})
            span.end_ms = begin + cost_ms
            self.spans.append(span)
            cursor[key] = span.end_ms
            fallback = self._device_cursor.get(track, 0.0)
            if span.end_ms > fallback:
                self._device_cursor[track] = span.end_ms

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def open_spans(self) -> list[Span]:
        return [span for span in self.spans if span.end_ms is None]

    def device_spans(self) -> list[Span]:
        return [span for span in self.spans if span.cat == "device"]

    def device_totals(self) -> dict[str, float]:
        """Total span milliseconds per device track."""
        totals: dict[str, float] = {}
        for span in self.spans:
            if span.cat != "device" or span.end_ms is None:
                continue
            totals[span.track] = totals.get(span.track, 0.0) + span.duration_ms
        return totals

    def max_ts(self) -> float:
        last = 0.0
        for span in self.spans:
            end = span.end_ms if span.end_ms is not None else span.start_ms
            if end > last:
                last = end
        for mark in self.instants:
            if mark.ts_ms > last:
                last = mark.ts_ms
        return last


# ----------------------------------------------------------------------
# module-level sink: ``None`` means tracing is a no-op everywhere
# ----------------------------------------------------------------------
ACTIVE: Tracer | None = None


def current_tracer() -> Tracer | None:
    return ACTIVE


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    global ACTIVE
    ACTIVE = tracer if tracer is not None else Tracer()
    return ACTIVE


def uninstall_tracer() -> Tracer | None:
    global ACTIVE
    previous, ACTIVE = ACTIVE, None
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh one) for the duration of the block."""
    global ACTIVE
    previous = ACTIVE
    active = tracer if tracer is not None else Tracer()
    ACTIVE = active
    try:
        yield active
    finally:
        ACTIVE = previous


def register_store_devices(tracer: Tracer, store: Any) -> None:
    """Give a page store's devices stable track names.

    Single :class:`DiskModel` -> ``disk0``; sharded -> ``disk0..n-1``;
    tiered -> ``tier.fast`` / ``tier.capacity``.
    """
    disks = getattr(store, "disks", None)
    if disks is None:
        tracer.name_device(store, "disk0")
        return
    fast = getattr(store, "fast", None)
    if fast is not None and len(disks) == 2 and disks[0] is fast:
        tracer.name_device(disks[0], "tier.fast")
        tracer.name_device(disks[1], "tier.capacity")
        return
    for index, disk in enumerate(disks):
        tracer.name_device(disk, f"disk{index}")
