"""Unified observability layer: span tracing, metrics, trace export.

Three pieces (see the module docstrings for detail):

* :mod:`repro.obs.trace` — virtual-clock span tracer.  Disabled by
  default; instrumented sites check the module global
  ``repro.obs.trace.ACTIVE`` and do nothing when it is ``None``, so the
  hot path stays clean and pricing is bit-identical in both states.
* :mod:`repro.obs.metrics` — cross-layer metrics registry (counters,
  gauges as thin views over existing attributes, histograms with
  ``latency_percentile`` semantics) under stable dotted names.
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON export.

Capture a trace from the CLI::

    PYTHONPATH=src python -m repro.eval trace --trace-out trace.json

and open ``trace.json`` at https://ui.perfetto.dev.
"""

from repro.obs.export import (
    chrome_trace,
    trace_device_totals,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
    percentile,
)
from repro.obs.trace import (
    Instant,
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    register_store_devices,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "install_tracer",
    "metric_key",
    "percentile",
    "register_store_devices",
    "trace_device_totals",
    "tracing",
    "uninstall_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
]
