"""Cross-layer metrics registry: counters, gauges, histograms.

Every layer of the pipeline publishes into one
:class:`MetricsRegistry` under stable dotted names with optional
``{key=value}`` labels::

    pool.hits{pool=workload}      gauge    (view over BufferPool.hits)
    prefetch.useful{pool=workload} counter
    sched.queueing_ms{client=alpha} counter
    tier.promotions               counter
    op.latency_ms{client=alpha}   histogram (p50/p95 via nearest rank)

Three metric kinds:

* :class:`Counter` — monotonically increasing value owned by the
  registry; layers call :meth:`Counter.inc`.
* :class:`Gauge` — a zero-argument callable sampled at read time.  Used
  as a *thin view* over existing canonical attributes
  (``BufferPool.hits`` stays a plain int on the hot path; the gauge just
  reads it), so registering a gauge never adds per-access cost.
* :class:`Histogram` — stores observations and reports count/sum and
  nearest-rank percentiles with the exact semantics of
  :func:`repro.workload.engine.latency_percentile` (which delegates to
  :func:`percentile` here).

``reset_stats()`` zeroes counters and histograms; gauges are live views
and follow whatever their underlying attribute does.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "percentile",
    "percentile_sorted",
]


def percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample; 0.0 when
    empty.  The shared kernel behind :func:`percentile` and the cached
    sorted copies the reporting paths keep (one sort per report, not
    one per percentile query)."""
    if not ordered:
        return 0.0
    rank = int(-(-q * len(ordered) // 1))  # ceil
    return ordered[min(max(rank, 1), len(ordered)) - 1]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sequence.

    Identical semantics to the workload engine's ``latency_percentile``
    (which is now a thin wrapper around this function).
    """
    if not values:
        return 0.0
    return percentile_sorted(sorted(values), q)


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Canonical registry key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (resettable)."""

    __slots__ = ("name", "labels", "key", "value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.key = metric_key(name, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A live view: samples a zero-argument callable at read time."""

    __slots__ = ("name", "labels", "key", "fn")

    def __init__(self, name: str, labels: dict[str, str], fn: Callable[[], float]) -> None:
        self.name = name
        self.labels = labels
        self.key = metric_key(name, labels)
        self.fn = fn

    @property
    def value(self) -> float:
        return self.fn()

    def reset(self) -> None:  # gauges track their source; nothing to zero
        return None


class Histogram:
    """Observation store with nearest-rank percentile summaries.

    Percentile queries sort a cached copy of the observations once and
    reuse it until new observations arrive (the cache is keyed on the
    sample size), so reporting several percentiles — or re-reading the
    same snapshot — does not re-sort a large sample each time.
    """

    __slots__ = ("name", "labels", "key", "values", "_sorted")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.key = metric_key(name, labels)
        self.values: list[float] = []
        self._sorted: list[float] | None = None

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    def sorted_values(self) -> list[float]:
        """The observations in ascending order (cached between
        observations)."""
        cache = self._sorted
        if cache is None or len(cache) != len(self.values):
            cache = self._sorted = sorted(self.values)
        return cache

    def percentile(self, q: float) -> float:
        return percentile_sorted(self.sorted_values(), q)

    def snapshot_items(self) -> list[tuple[str, float]]:
        """Flattened ``(key, value)`` rows for :meth:`MetricsRegistry.snapshot`."""
        rows = []
        for suffix, value in (
            ("count", float(self.count)),
            ("sum", round(self.sum, 6)),
            ("p50", self.percentile(0.50)),
            ("p95", self.percentile(0.95)),
        ):
            rows.append((metric_key(f"{self.name}.{suffix}", self.labels), value))
        return rows

    def reset(self) -> None:
        self.values.clear()
        self._sorted = None


class MetricsRegistry:
    """Get-or-create home for every layer's metrics."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls: type, name: str, labels: dict[str, str]) -> Any:
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise ConfigurationError(
                f"metric {key!r} already registered as {type(metric).__name__}, "
                f"requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(Histogram, name, labels)

    def gauge(self, name: str, fn: Callable[[], float], **labels: str) -> Gauge:
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Gauge(name, labels, fn)
            self._metrics[key] = metric
        elif type(metric) is Gauge:
            metric.fn = fn  # re-registration rebinds the view (e.g. attach())
        else:
            raise ConfigurationError(
                f"metric {key!r} already registered as {type(metric).__name__}, "
                "requested Gauge"
            )
        return metric

    def get(self, key: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(key)

    def value(self, key: str, default: float = 0.0) -> float:
        metric = self._metrics.get(key)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return float(metric.count)
        return metric.value

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, float]:
        """Flattened ``{key: value}`` view, histograms expanded to
        ``name.count/.sum/.p50/.p95`` rows, sorted by key."""
        out: dict[str, float] = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if isinstance(metric, Histogram):
                for row_key, value in metric.snapshot_items():
                    out[row_key] = value
            else:
                out[key] = metric.value
        return out

    def reset_stats(self) -> None:
        """Zero counters and histograms; gauges are live views."""
        for metric in self._metrics.values():
            metric.reset()

    def format(self, title: str = "metrics") -> str:
        snap = self.snapshot()
        width = max((len(key) for key in snap), default=len(title))
        lines = [f"== {title} =="]
        for key, value in snap.items():
            if isinstance(value, float) and not value.is_integer():
                rendered = f"{value:.3f}"
            else:
                rendered = f"{int(value)}"
            lines.append(f"{key.ljust(width)}  {rendered}")
        return "\n".join(lines)

    def write(self, path: str, extra: dict[str, Any] | None = None) -> None:
        payload: dict[str, Any] = {"metrics": self.snapshot()}
        if extra:
            payload.update(extra)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
