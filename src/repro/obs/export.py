"""Chrome trace-event / Perfetto JSON export for :class:`Tracer` runs.

The exported object follows the Chrome trace-event "JSON Object Format":
``{"traceEvents": [...], "displayTimeUnit": "ms"}``.  Spans become
``"ph": "X"`` complete events and instants become ``"ph": "i"`` thread
instants; ``"ph": "M"`` metadata events name the two processes (clients
on the virtual clock, device arms) and one thread per track.  Timestamps
are microseconds as the format requires — virtual milliseconds * 1000 —
kept as floats so per-disk span totals stay exactly equal to the run's
:class:`~repro.disk.model.DiskStats` device time.

Open the file at https://ui.perfetto.dev (or ``chrome://tracing``).
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.trace import Tracer

__all__ = [
    "CLIENT_PID",
    "DEVICE_PID",
    "REQUIRED_EVENT_KEYS",
    "chrome_trace",
    "trace_device_totals",
    "validate_chrome_trace",
    "write_chrome_trace",
]

CLIENT_PID = 1
DEVICE_PID = 2

REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Render a tracer's spans and instants as a Chrome trace-event dict."""
    device_tracks = set(tracer.device_tracks)
    track_tids: dict[tuple[int, str], int] = {}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": CLIENT_PID,
            "tid": 0,
            "args": {"name": "clients (virtual clock)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": DEVICE_PID,
            "tid": 0,
            "args": {"name": "devices"},
        },
    ]

    def resolve(track: str, is_device: bool) -> tuple[int, int]:
        pid = DEVICE_PID if is_device else CLIENT_PID
        key = (pid, track)
        tid = track_tids.get(key)
        if tid is None:
            tid = sum(1 for existing in track_tids if existing[0] == pid) + 1
            track_tids[key] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return pid, tid

    last_ts = tracer.max_ts()
    for span in tracer.spans:
        is_device = span.cat == "device" or span.track in device_tracks
        pid, tid = resolve(span.track, is_device)
        end = span.end_ms if span.end_ms is not None else max(span.start_ms, last_ts)
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start_ms * 1000.0,
            "dur": (end - span.start_ms) * 1000.0,
            "pid": pid,
            "tid": tid,
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    for mark in tracer.instants:
        pid, tid = resolve(mark.track, mark.track in device_tracks)
        event = {
            "name": mark.name,
            "cat": mark.cat,
            "ph": "i",
            "ts": mark.ts_ms * 1000.0,
            "pid": pid,
            "tid": tid,
            "s": "t",
        }
        if mark.args:
            event["args"] = mark.args
        events.append(event)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": tracer.label,
            "clock": "virtual-ms" if tracer.virtual else "serial-device-ms",
        },
    }


def write_chrome_trace(path: str, tracer: Tracer) -> dict[str, Any]:
    """Serialize :func:`chrome_trace` to ``path``; returns the dict."""
    data = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1)
        handle.write("\n")
    return data


def validate_chrome_trace(data: Any) -> dict[str, int]:
    """Structurally validate a loaded trace dict.

    Raises :class:`ValueError` on shape violations; returns event counts
    per phase (``{"X": ..., "i": ..., "M": ...}``) for reporting.
    """
    if not isinstance(data, dict):
        raise ValueError("trace root must be a JSON object")
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    counts: dict[str, int] = {}
    for event in events:
        if not isinstance(event, dict):
            raise ValueError("each trace event must be an object")
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"trace event missing required key {key!r}: {event}")
        ph = event["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "X":
            if "dur" not in event:
                raise ValueError(f"complete event missing dur: {event}")
            if event["dur"] < 0 or event["ts"] < 0:
                raise ValueError(f"negative timestamp in event: {event}")
    return counts


def trace_device_totals(data: dict[str, Any]) -> dict[str, float]:
    """Per-device-track span totals (ms) recomputed from exported JSON."""
    names: dict[int, str] = {}
    for event in data["traceEvents"]:
        if event.get("ph") == "M" and event["name"] == "thread_name" and event["pid"] == DEVICE_PID:
            names[event["tid"]] = event["args"]["name"]
    totals: dict[str, float] = {}
    for event in data["traceEvents"]:
        if event.get("ph") == "X" and event["pid"] == DEVICE_PID:
            track = names.get(event["tid"], str(event["tid"]))
            totals[track] = totals.get(track, 0.0) + event["dur"] / 1000.0
    return totals
