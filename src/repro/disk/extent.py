"""Extents: runs of physically consecutive disk pages.

Cluster units, buddies and sequential-file chunks are all extents.  An
extent is a half-open interval of page numbers ``[start, start + npages)``
that can be transferred with a single read request (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import DiskError

__all__ = ["Extent"]


@dataclass(frozen=True, slots=True)
class Extent:
    """A run of ``npages`` physically consecutive pages starting at
    page number ``start``."""

    start: int
    npages: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.npages <= 0:
            raise DiskError(
                f"invalid extent: start={self.start}, npages={self.npages}"
            )

    @property
    def end(self) -> int:
        """One past the last page of the extent."""
        return self.start + self.npages

    def pages(self) -> Iterator[int]:
        """Iterate the absolute page numbers of the extent."""
        return iter(range(self.start, self.end))

    def contains(self, page: int) -> bool:
        return self.start <= page < self.end

    def subextent(self, offset: int, npages: int) -> "Extent":
        """The extent covering ``npages`` pages at page offset ``offset``
        inside this extent."""
        if offset < 0 or offset + npages > self.npages:
            raise DiskError(
                f"subextent [{offset}, {offset + npages}) outside extent of "
                f"{self.npages} pages"
            )
        return Extent(self.start + offset, npages)

    def overlaps(self, other: "Extent") -> bool:
        return self.start < other.end and other.start < self.end

    def adjacent_to(self, other: "Extent") -> bool:
        """True if the two extents abut without a gap (in either order)."""
        return self.end == other.start or other.end == self.start
