"""Disk substrate: cost model, extents, page and buddy allocation.

The disk never stores payload bytes — organization models keep state in
memory — it *prices* requests with the three-component access-time model
of Section 3.1 and tracks head position, so physically consecutive reads
are cheap and scattered reads pay seek + latency.
"""

from repro.disk.allocator import PageAllocator, Region
from repro.disk.buddy import BuddyAllocator, FixedUnitAllocator, buddy_sizes
from repro.disk.extent import Extent
from repro.disk.model import DiskModel, DiskStats, VectoredCost
from repro.disk.params import DiskParameters
from repro.disk.trace import IOPhase

__all__ = [
    "DiskParameters",
    "DiskModel",
    "DiskStats",
    "VectoredCost",
    "Extent",
    "Region",
    "PageAllocator",
    "BuddyAllocator",
    "FixedUnitAllocator",
    "buddy_sizes",
    "IOPhase",
]
