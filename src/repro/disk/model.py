"""The disk cost model.

:class:`DiskModel` is a deterministic accountant for simulated I/O time.
It never stores data — the organization models keep their own in-memory
state — it *prices* every read and write request with the three-component
model of Section 3.1:

* a **fresh** request costs ``ts + tl + k * tt``,
* a **continuation** request (a follow-up inside a cluster unit that the
  head is already positioned on, Section 5.4.3) costs ``tl + k * tt``,
* a **strictly sequential** request (the next page after the previous
  request, detected from the simulated head position) costs ``k * tt``.

Every request updates the head position; statistics are kept both as
accumulated milliseconds per component and as event counts, and can be
snapshot to measure individual experiment phases.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.disk.extent import Extent
from repro.disk.params import DiskParameters
from repro.errors import DiskError
from repro.obs import trace as _obs

__all__ = ["DiskModel", "DiskStats", "VectoredCost", "measure_costs"]

#: Below this many runs the vectorized batch pricer falls back to the
#: scalar per-request loop — numpy's fixed per-call overhead only pays
#: off once a batch amortises it.
BATCH_MIN_RUNS = 8


@dataclass(slots=True)
class DiskStats:
    """Accumulated I/O statistics of a :class:`DiskModel`.

    Supports subtraction, so a phase cost is
    ``disk.stats() - snapshot_taken_before_the_phase``.
    """

    requests: int = 0
    seeks: int = 0
    rotations: int = 0
    pages_transferred: int = 0
    seek_ms: float = 0.0
    latency_ms: float = 0.0
    transfer_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        """Total simulated I/O time in milliseconds."""
        return self.seek_ms + self.latency_ms + self.transfer_ms

    @property
    def total_s(self) -> float:
        """Total simulated I/O time in seconds (the unit of Figures 5/14)."""
        return self.total_ms / 1000.0

    def __sub__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            requests=self.requests - other.requests,
            seeks=self.seeks - other.seeks,
            rotations=self.rotations - other.rotations,
            pages_transferred=self.pages_transferred - other.pages_transferred,
            seek_ms=self.seek_ms - other.seek_ms,
            latency_ms=self.latency_ms - other.latency_ms,
            transfer_ms=self.transfer_ms - other.transfer_ms,
        )

    def __add__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            requests=self.requests + other.requests,
            seeks=self.seeks + other.seeks,
            rotations=self.rotations + other.rotations,
            pages_transferred=self.pages_transferred + other.pages_transferred,
            seek_ms=self.seek_ms + other.seek_ms,
            latency_ms=self.latency_ms + other.latency_ms,
            transfer_ms=self.transfer_ms + other.transfer_ms,
        )

    def copy(self) -> "DiskStats":
        return DiskStats(
            requests=self.requests,
            seeks=self.seeks,
            rotations=self.rotations,
            pages_transferred=self.pages_transferred,
            seek_ms=self.seek_ms,
            latency_ms=self.latency_ms,
            transfer_ms=self.transfer_ms,
        )


@dataclass(slots=True)
class VectoredCost:
    """Parallel cost of a batch of page requests over one or more disks.

    ``response_ms`` assumes the devices worked concurrently (max over
    devices), ``total_ms`` is the device time they consumed together
    (sum).  On a single disk the two coincide.  The sharded page store
    (:mod:`repro.pagestore`) produces the multi-disk instances; it
    lives here so the single-disk :class:`DiskModel` can speak the same
    measurement surface without a circular import.
    """

    response_ms: float
    total_ms: float
    per_disk_ms: list[float] = field(default_factory=list)

    @property
    def parallelism(self) -> float:
        """Achieved parallel speed-up: total work / response time."""
        if self.response_ms <= 0:
            return 1.0
        return self.total_ms / self.response_ms


@contextmanager
def measure_costs(store) -> Iterator[VectoredCost]:
    """Measure a batch of requests against any store exposing the
    ``snapshot()`` / ``cost_since()`` surface; the yielded
    :class:`VectoredCost` is filled in when the block exits.  Shared
    implementation behind ``DiskModel.measure`` and
    ``ShardedPageStore.measure``."""
    before = store.snapshot()
    cost = VectoredCost(response_ms=0.0, total_ms=0.0)
    try:
        yield cost
    finally:
        done = store.cost_since(before)
        cost.response_ms = done.response_ms
        cost.total_ms = done.total_ms
        cost.per_disk_ms = done.per_disk_ms


@dataclass(slots=True)
class _Request:
    """One priced I/O request, kept when tracing is enabled."""

    kind: str
    start: int
    npages: int
    cost_ms: float


class DiskModel:
    """Prices read/write requests and tracks the simulated head position.

    Parameters
    ----------
    params:
        The disk constants; defaults to the paper's 9 / 6 / 1 ms disk.
    trace:
        When true, every request is recorded in :attr:`requests` — useful
        for tests and debugging, expensive for full experiments.
    """

    __slots__ = ("params", "_stats", "_head", "trace", "requests")

    def __init__(self, params: DiskParameters | None = None, trace: bool = False):
        self.params = params or DiskParameters()
        self._stats = DiskStats()
        self._head: int | None = None
        self.trace = trace
        self.requests: list[_Request] = []

    # ------------------------------------------------------------------
    # pricing
    # ------------------------------------------------------------------
    def _transfer(self, start: int, npages: int, continuation: bool, kind: str) -> float:
        if npages <= 0:
            raise DiskError(f"cannot transfer {npages} pages")
        if start < 0:
            raise DiskError(f"negative page number {start}")
        p = self.params
        sequential = self._head is not None and start == self._head
        if sequential:
            cost = p.sequential_ms(npages)
            self._stats.transfer_ms += npages * p.transfer_ms
        elif continuation:
            cost = p.continuation_ms(npages)
            self._stats.rotations += 1
            self._stats.latency_ms += p.latency_ms
            self._stats.transfer_ms += npages * p.transfer_ms
        else:
            cost = p.random_access_ms(npages)
            self._stats.seeks += 1
            self._stats.rotations += 1
            self._stats.seek_ms += p.seek_ms
            self._stats.latency_ms += p.latency_ms
            self._stats.transfer_ms += npages * p.transfer_ms
        self._stats.requests += 1
        self._stats.pages_transferred += npages
        self._head = start + npages
        if self.trace:
            self.requests.append(_Request(kind, start, npages, cost))
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.device(self, kind, start, npages, cost)
        return cost

    def read(self, start: int, npages: int = 1, continuation: bool = False) -> float:
        """Price a read request of ``npages`` consecutive pages; returns
        the cost of this request in milliseconds."""
        return self._transfer(start, npages, continuation, "read")

    def read_runs(
        self, runs: Sequence[tuple[int, int]], continuation: bool = False
    ) -> float:
        """Price one vectored batch of ``(start, npages)`` read runs
        (the buffer pool's coalescing scheduler): the head positions
        once — the first run is priced with the caller's
        ``continuation`` flag, follow-up runs as continuations."""
        return self.price_runs(runs, continuation, "read")

    def price_runs(
        self,
        runs: Sequence[tuple[int, int]],
        continuation: bool = False,
        kind: str = "read",
    ) -> float:
        """Price an ordered batch of ``(start, npages)`` runs in one
        call: the first run carries the caller's ``continuation`` flag,
        follow-up runs are continuations (one head positioning per
        batch), and strictly sequential follow-ups — a run starting at
        the previous run's end — cost pure transfer, exactly as if the
        runs were priced one :meth:`read`/:meth:`write` at a time.

        Large batches are priced with numpy (sequential-run detection
        and the seek/rotate/transfer arithmetic as array operations);
        statistics are still accumulated with the scalar path's
        left-to-right float additions, so costs, stats, and the head
        position are bit-identical to the per-request loop.  Small
        batches, traced models, and active observability sinks use the
        scalar loop directly (per-request records keep their order).
        """
        if not isinstance(runs, (list, tuple)):
            runs = list(runs)
        if (
            len(runs) < BATCH_MIN_RUNS
            or self.trace
            or _obs.ACTIVE is not None
        ):
            return self._price_runs_scalar(runs, continuation, kind)
        arr = np.asarray(runs, dtype=np.int64)
        starts = arr[:, 0]
        npages = arr[:, 1]
        if npages.min() <= 0 or starts.min() < 0:
            # Re-run scalar so the DiskError surfaces at the exact
            # offending run with partial stats, as the loop would.
            return self._price_runs_scalar(runs, continuation, kind)
        p = self.params
        n = len(arr)
        prev_end = np.empty(n, dtype=np.int64)
        prev_end[0] = self._head if self._head is not None else -1
        np.add(starts[:-1], npages[:-1], out=prev_end[1:])
        sequential = starts == prev_end
        tt = npages * p.transfer_ms
        costs = np.where(sequential, tt, p.latency_ms + tt)
        seq_list = sequential.tolist()
        tt_list = tt.tolist()
        cost_list = costs.tolist()
        st = self._stats
        if not seq_list[0] and not continuation:
            # Only the batch head can be a fresh request.
            cost_list[0] = p.random_access_ms(int(npages[0]))
            st.seeks += 1
            st.seek_ms += p.seek_ms
        # Left-fold accumulation mirrors the scalar loop's addition
        # order (numpy reductions use pairwise summation, which is not
        # bit-identical for arbitrary float parameters).
        total = 0.0
        transfer_ms = st.transfer_ms
        latency_ms = st.latency_ms
        rotations = st.rotations
        for is_seq, t, c in zip(seq_list, tt_list, cost_list):
            total += c
            transfer_ms += t
            if not is_seq:
                rotations += 1
                latency_ms += p.latency_ms
        st.transfer_ms = transfer_ms
        st.latency_ms = latency_ms
        st.rotations = rotations
        st.requests += n
        st.pages_transferred += int(npages.sum())
        self._head = int(starts[-1]) + int(npages[-1])
        return total

    def _price_runs_scalar(
        self, runs: Sequence[tuple[int, int]], continuation: bool, kind: str
    ) -> float:
        cost = 0.0
        first = True
        for start, npages in runs:
            cost += self._transfer(
                start, npages, continuation if first else True, kind
            )
            first = False
        return cost

    def write(self, start: int, npages: int = 1, continuation: bool = False) -> float:
        """Price a write request (same cost model as reads)."""
        return self._transfer(start, npages, continuation, "write")

    def write_runs(
        self, runs: Sequence[tuple[int, int]], continuation: bool = False
    ) -> float:
        """Price one vectored batch of ``(start, npages)`` write runs —
        the write mirror of :meth:`read_runs`: the head positions once,
        the first run carries the caller's ``continuation`` flag,
        follow-up runs are continuations."""
        return self.price_runs(runs, continuation, "write")

    def charge(self, seeks: int = 0, rotations: int = 0, pages: int = 0) -> float:
        """Account an *analytic* cost (used for theoretical optima such
        as Figure 16's lower bound) without moving the head."""
        if min(seeks, rotations, pages) < 0:
            raise DiskError("cannot charge negative cost components")
        p = self.params
        self._stats.seeks += seeks
        self._stats.rotations += rotations
        self._stats.pages_transferred += pages
        self._stats.seek_ms += seeks * p.seek_ms
        self._stats.latency_ms += rotations * p.latency_ms
        self._stats.transfer_ms += pages * p.transfer_ms
        if seeks or rotations or pages:
            self._stats.requests += 1
        cost = seeks * p.seek_ms + rotations * p.latency_ms + pages * p.transfer_ms
        if cost and _obs.ACTIVE is not None:
            _obs.ACTIVE.device(self, "charge", -1, pages, cost)
        return cost

    def read_extent(self, extent: Extent, continuation: bool = False) -> float:
        """Read a whole extent with one request."""
        return self.read(extent.start, extent.npages, continuation)

    def write_extent(self, extent: Extent, continuation: bool = False) -> float:
        """Write a whole extent with one request."""
        return self.write(extent.start, extent.npages, continuation)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def stats(self) -> DiskStats:
        """A snapshot copy of the accumulated statistics."""
        return self._stats.copy()

    def snapshot(self) -> DiskStats:
        """Statistics marker for :meth:`cost_since` (the single-disk
        face of the :class:`~repro.pagestore.store.PageStore`
        measurement surface)."""
        return self.stats()

    def stats_since(self, snapshot: DiskStats) -> DiskStats:
        """Statistics delta since ``snapshot``."""
        return self._stats - snapshot

    def cost_since(self, snapshot: DiskStats) -> VectoredCost:
        """Cost of everything priced since ``snapshot``; on one disk
        response time and device time coincide."""
        delta = (self._stats - snapshot).total_ms
        return VectoredCost(
            response_ms=delta, total_ms=delta, per_disk_ms=[delta]
        )

    def measure(self):
        """Context manager measuring a batch of requests::

            with disk.measure() as cost:
                ...issue requests...
            print(cost.total_ms)
        """
        return measure_costs(self)

    @property
    def total_ms(self) -> float:
        return self._stats.total_ms

    @property
    def head(self) -> int | None:
        """Page number the head sits *after* (next sequential page),
        or ``None`` before the first request."""
        return self._head

    def invalidate_head(self) -> None:
        """Forget the head position (e.g. after activity by other
        processes); the next request is priced as a fresh request."""
        self._head = None

    def reset(self) -> None:
        """Zero all statistics and forget the head position."""
        self._stats = DiskStats()
        self._head = None
        self.requests.clear()

    def reset_stats(self) -> None:
        """Zero statistics only — the unified mid-run reset convention.

        Unlike :meth:`reset`, the head position is preserved so pricing
        of subsequent requests is unaffected by the reset."""
        self._stats = DiskStats()
        self.requests.clear()
