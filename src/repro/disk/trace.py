"""Phase-scoped I/O measurement helpers.

Experiments need per-phase costs ("construction", "MBR join", "object
transfer").  :class:`IOPhase` is a context manager that snapshots the
disk statistics on entry and exposes the delta on exit.
"""

from __future__ import annotations

from repro.disk.model import DiskModel, DiskStats

__all__ = ["IOPhase"]


class IOPhase:
    """Measure the I/O cost of a code block.

    Example
    -------
    >>> disk = DiskModel()
    >>> with IOPhase(disk) as phase:
    ...     _ = disk.read(0, 4)
    >>> phase.stats.requests
    1
    """

    __slots__ = ("disk", "_before", "stats")

    def __init__(self, disk: DiskModel):
        self.disk = disk
        self._before: DiskStats | None = None
        self.stats: DiskStats = DiskStats()

    def __enter__(self) -> "IOPhase":
        self._before = self.disk.stats()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._before is not None
        self.stats = self.disk.stats() - self._before

    @property
    def ms(self) -> float:
        return self.stats.total_ms

    @property
    def seconds(self) -> float:
        return self.stats.total_s
