"""Buddy-system storage management for cluster units (Section 5.3.1).

Every cluster unit lives in a physical unit (*buddy*) of size
``Smax * 2^-i``.  A cluster unit always uses the smallest buddy it fits;
when it outgrows its buddy it is moved into the next bigger one, and
buddies that are no longer used are given back to the file management.

Two allocators share one interface:

* :class:`FixedUnitAllocator` — the plain cluster organization of
  Section 5.3: every cluster unit occupies a full ``Smax`` extent, so
  non-occupied pages of a unit are lost (poor storage utilization).
* :class:`BuddyAllocator` — the (restricted) buddy system: a limited
  set of buddy sizes obtained by repeated halving of ``Smax``; the
  restricted variant of the paper uses 3 sizes
  (``Smax``, ``Smax/2``, ``Smax/4``).

Both report ``occupied_pages`` as the paper counts them: the *full*
physical unit of every live cluster unit, because its unused pages
cannot serve any other purpose.
"""

from __future__ import annotations

from repro.disk.allocator import Region
from repro.disk.extent import Extent
from repro.errors import AllocationError

__all__ = ["FixedUnitAllocator", "BuddyAllocator", "buddy_sizes"]


def buddy_sizes(max_unit_pages: int, num_sizes: int | None = None) -> list[int]:
    """The descending list of buddy sizes for a given ``Smax``.

    Sizes are produced by exact halving while the size stays even, e.g.
    ``Smax = 20`` pages yields ``[20, 10, 5]``.  ``num_sizes`` truncates
    the list (the paper's *restricted* buddy system uses 3 sizes).
    """
    if max_unit_pages <= 0:
        raise AllocationError(f"Smax must be positive, got {max_unit_pages}")
    sizes = [max_unit_pages]
    while sizes[-1] % 2 == 0 and sizes[-1] > 1:
        sizes.append(sizes[-1] // 2)
    if num_sizes is not None:
        if num_sizes < 1:
            raise AllocationError(f"need at least one buddy size, got {num_sizes}")
        sizes = sizes[:num_sizes]
    return sizes


class FixedUnitAllocator:
    """Every cluster unit occupies a full ``Smax`` extent."""

    __slots__ = ("region", "max_unit_pages", "_live")

    def __init__(self, region: Region, max_unit_pages: int):
        if max_unit_pages <= 0:
            raise AllocationError(f"Smax must be positive, got {max_unit_pages}")
        self.region = region
        self.max_unit_pages = max_unit_pages
        self._live: dict[int, Extent] = {}

    def allocate(self, npages: int) -> Extent:
        """Allocate the physical unit for a cluster needing ``npages``;
        always a full ``Smax`` extent."""
        if npages > self.max_unit_pages:
            raise AllocationError(
                f"cluster of {npages} pages exceeds Smax={self.max_unit_pages}"
            )
        extent = self.region.allocate(self.max_unit_pages)
        self._live[extent.start] = extent
        return extent

    def free(self, extent: Extent) -> None:
        if self._live.pop(extent.start, None) is None:
            raise AllocationError(f"extent {extent} is not a live unit")
        self.region.free(extent)

    def fits(self, extent: Extent, npages: int) -> bool:
        """True if a cluster of ``npages`` still fits its physical unit."""
        return npages <= extent.npages

    @property
    def occupied_pages(self) -> int:
        """Pages bound by live units (always ``units * Smax``)."""
        return len(self._live) * self.max_unit_pages

    @property
    def unit_count(self) -> int:
        return len(self._live)

    @property
    def moves(self) -> int:
        """Fixed units are never moved."""
        return 0


class BuddyAllocator:
    """Power-of-two-ish buddy allocator over one region.

    Top-level buddies (size ``Smax``) are carved from the region on
    demand; smaller buddies are produced by splitting, and freed halves
    coalesce back into their parents.

    The allocator must own its region exclusively: top-level buddies are
    assumed to be ``Smax``-aligned relative to the region base, which
    holds because every region allocation made here is ``Smax`` pages.
    """

    __slots__ = ("region", "sizes", "_free", "_live", "_top", "moves")

    def __init__(
        self,
        region: Region,
        max_unit_pages: int,
        num_sizes: int | None = None,
    ):
        self.region = region
        self.sizes = buddy_sizes(max_unit_pages, num_sizes)
        # free lists per level: level 0 = Smax, level i = Smax / 2^i
        self._free: list[set[int]] = [set() for _ in self.sizes]
        self._live: dict[int, int] = {}  # start page -> level
        self._top: dict[int, int] = {}  # top-buddy start -> top extent start
        self.moves = 0

    # ------------------------------------------------------------------
    @property
    def max_unit_pages(self) -> int:
        return self.sizes[0]

    def level_for(self, npages: int) -> int:
        """Deepest (smallest) level whose buddy size holds ``npages``."""
        if npages > self.sizes[0]:
            raise AllocationError(
                f"cluster of {npages} pages exceeds Smax={self.sizes[0]}"
            )
        level = 0
        for i, size in enumerate(self.sizes):
            if size >= npages:
                level = i
            else:
                break
        return level

    # ------------------------------------------------------------------
    def allocate(self, npages: int) -> Extent:
        """Allocate the smallest buddy that fits ``npages`` pages."""
        if npages <= 0:
            raise AllocationError(f"cannot allocate {npages} pages")
        level = self.level_for(npages)
        start = self._take(level)
        self._live[start] = level
        return Extent(start, self.sizes[level])

    def _take(self, level: int) -> int:
        if self._free[level]:
            return self._free[level].pop()
        if level == 0:
            extent = self.region.allocate(self.sizes[0])
            self._top[extent.start] = extent.start
            return extent.start
        # Split a bigger buddy into two halves; keep the upper half free.
        parent = self._take(level - 1)
        half = self.sizes[level]
        if self.sizes[level - 1] != 2 * half:
            # Defensive: halving invariant guaranteed by buddy_sizes().
            raise AllocationError("buddy sizes are not exact halves")
        self._free[level].add(parent + half)
        return parent

    def free(self, extent: Extent) -> None:
        """Release a buddy and coalesce free siblings bottom-up."""
        level = self._live.pop(extent.start, None)
        if level is None:
            raise AllocationError(f"extent {extent} is not a live buddy")
        if self.sizes[level] != extent.npages:
            raise AllocationError(
                f"extent {extent} does not match its buddy size "
                f"{self.sizes[level]}"
            )
        start = extent.start
        while level > 0:
            size = self.sizes[level]
            top = self._top_start(start)
            offset = start - top
            # The sibling is the other half of the parent buddy: the pair
            # (2k, 2k+1) of size-`size` slots forms one parent of size 2*size.
            if (offset // size) % 2:
                sibling = start - size
            else:
                sibling = start + size
            if sibling in self._free[level]:
                self._free[level].remove(sibling)
                start = min(start, sibling)
                level -= 1
            else:
                break
        if level == 0:
            # A whole Smax buddy is free again: hand it back to the region.
            del self._top[start]
            self.region.free(Extent(start, self.sizes[0]))
        else:
            self._free[level].add(start)

    def _top_start(self, start: int) -> int:
        top_size = self.sizes[0]
        base = self.region.base
        return base + ((start - base) // top_size) * top_size

    # ------------------------------------------------------------------
    def grow(self, extent: Extent, npages: int) -> Extent:
        """Move a cluster unit into the smallest buddy holding ``npages``.

        Returns the extent unchanged when the unit still fits; otherwise
        frees the old buddy, allocates a bigger one and counts a *move*
        (the construction-cost overhead of Section 5.3.1).
        """
        if self.fits(extent, npages):
            return extent
        self.free(extent)
        new_extent = self.allocate(npages)
        self.moves += 1
        return new_extent

    def fits(self, extent: Extent, npages: int) -> bool:
        return npages <= extent.npages

    # ------------------------------------------------------------------
    @property
    def occupied_pages(self) -> int:
        """Pages bound by live buddies (the utilization denominator)."""
        return sum(self.sizes[level] for level in self._live.values())

    @property
    def unit_count(self) -> int:
        return len(self._live)

    @property
    def free_pages(self) -> int:
        return sum(
            self.sizes[level] * len(starts)
            for level, starts in enumerate(self._free)
        )
