"""Disk parameterisation.

Section 3.1 decomposes the access time of a page into seek time ``ts``,
rotational latency ``tl`` and transfer time ``tt`` with ``ts > tl > tt``;
Section 5.1 fixes the averages used throughout the evaluation (9 / 6 /
1 ms for 4 KB pages).  :class:`DiskParameters` bundles these constants
together with the derived quantities used by the query techniques.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    LATENCY_TIME_MS,
    PAGE_SIZE,
    SEEK_TIME_MS,
    TRANSFER_TIME_MS,
)
from repro.errors import ConfigurationError

__all__ = ["DiskParameters"]


@dataclass(frozen=True, slots=True)
class DiskParameters:
    """Immutable description of the simulated magnetic disk.

    Attributes
    ----------
    seek_ms:
        Average seek time ``ts`` (move the head to the proper track).
    latency_ms:
        Average rotational latency ``tl``.
    transfer_ms:
        Transfer time ``tt`` of one page.
    page_size:
        Page size in bytes.
    pages_per_cylinder:
        Pages per cylinder; extents of physically consecutive pages are
        assumed to fit one cylinder (track switches inside a cylinder are
        neglected, Section 3.1).
    """

    seek_ms: float = SEEK_TIME_MS
    latency_ms: float = LATENCY_TIME_MS
    transfer_ms: float = TRANSFER_TIME_MS
    page_size: int = PAGE_SIZE
    pages_per_cylinder: int = 1024

    def __post_init__(self) -> None:
        if min(self.seek_ms, self.latency_ms, self.transfer_ms) < 0:
            raise ConfigurationError("disk time components must be non-negative")
        if not (self.seek_ms >= self.latency_ms >= self.transfer_ms):
            raise ConfigurationError(
                "the paper assumes ts >= tl >= tt; got "
                f"ts={self.seek_ms}, tl={self.latency_ms}, tt={self.transfer_ms}"
            )
        if self.page_size <= 0 or self.pages_per_cylinder <= 0:
            raise ConfigurationError("page_size and pages_per_cylinder must be > 0")

    # ------------------------------------------------------------------
    def random_access_ms(self, npages: int = 1) -> float:
        """Cost of one fresh read request of ``npages`` consecutive pages:
        ``ts + tl + npages * tt``."""
        return self.seek_ms + self.latency_ms + npages * self.transfer_ms

    def continuation_ms(self, npages: int = 1) -> float:
        """Cost of a follow-up request inside the same cluster unit:
        ``tl + npages * tt`` (Section 5.4.3 charges only one seek per
        cluster unit, follow-ups pay a rotational delay)."""
        return self.latency_ms + npages * self.transfer_ms

    def sequential_ms(self, npages: int = 1) -> float:
        """Cost of continuing a strictly sequential scan: pure transfer."""
        return npages * self.transfer_ms

    @property
    def slm_gap_pages(self) -> int:
        """SLM read-schedule gap rule of [SLM93] (Section 5.4.2).

        A read request is interrupted when a run of ``l`` or more
        non-requested pages occurs, ``l = tl / tt - 1/2`` (the trailing
        correction terms of the published formula are ignored, as the
        paper does).  Gaps strictly shorter than the returned page count
        are cheaper to read through than to skip.
        """
        l = self.latency_ms / self.transfer_ms - 0.5
        return max(1, int(-(-l // 1)))  # ceil, at least one page
