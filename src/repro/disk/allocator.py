"""Page allocation: address-space regions with bump + free-list reuse.

The simulated disk address space is partitioned into named *regions*
(one per file or storage component), so every component gets its own run
of page numbers.  Inside a region, pages are handed out by a bump
pointer; freed extents are kept on a free list and reused first-fit.
This mirrors a real file system well enough for the paper's purposes:
appends to one file are physically consecutive, while pages of
*different* components are far apart (a dynamic environment scatters
them, Section 3.2.3).
"""

from __future__ import annotations

from repro.disk.extent import Extent
from repro.errors import AllocationError

__all__ = ["Region", "PageAllocator"]


class Region:
    """A contiguous slice of the disk address space owned by one
    component (a file, an R*-tree, a cluster area)."""

    __slots__ = ("name", "base", "capacity", "_bump", "_free")

    def __init__(self, name: str, base: int, capacity: int):
        self.name = name
        self.base = base
        self.capacity = capacity
        self._bump = 0
        self._free: list[Extent] = []

    # ------------------------------------------------------------------
    def allocate(self, npages: int = 1) -> Extent:
        """Allocate ``npages`` physically consecutive pages.

        Freed extents are reused first-fit before the bump pointer grows;
        an exactly-fitting free extent is consumed whole, a larger one is
        split.
        """
        if npages <= 0:
            raise AllocationError(f"cannot allocate {npages} pages")
        for i, free in enumerate(self._free):
            if free.npages >= npages:
                del self._free[i]
                if free.npages > npages:
                    self._free.append(
                        Extent(free.start + npages, free.npages - npages)
                    )
                return Extent(free.start, npages)
        if self._bump + npages > self.capacity:
            raise AllocationError(
                f"region '{self.name}' exhausted: "
                f"{self._bump}/{self.capacity} pages used, wanted {npages}"
            )
        extent = Extent(self.base + self._bump, npages)
        self._bump += npages
        return extent

    def free(self, extent: Extent) -> None:
        """Return an extent to the region's free list."""
        if extent.start < self.base or extent.end > self.base + self.capacity:
            raise AllocationError(
                f"extent {extent} does not belong to region '{self.name}'"
            )
        self._free.append(extent)

    # ------------------------------------------------------------------
    @property
    def allocated_pages(self) -> int:
        """Pages handed out and not yet freed."""
        return self._bump - sum(e.npages for e in self._free)

    @property
    def high_water_pages(self) -> int:
        """Pages ever touched by the bump pointer (region footprint)."""
        return self._bump


class PageAllocator:
    """Hands out :class:`Region` slices of the global page address space.

    Region bases are spaced ``region_capacity`` pages apart, so page
    numbers of different regions never interleave and a request can never
    be accidentally "sequential" across components.
    """

    __slots__ = ("region_capacity", "_regions", "_next_base")

    def __init__(self, region_capacity: int = 1 << 24):
        if region_capacity <= 0:
            raise AllocationError("region capacity must be positive")
        self.region_capacity = region_capacity
        self._regions: dict[str, Region] = {}
        self._next_base = 0

    def region(self, name: str) -> Region:
        """Get or create the region named ``name``."""
        existing = self._regions.get(name)
        if existing is not None:
            return existing
        region = Region(name, self._next_base, self.region_capacity)
        self._next_base += self.region_capacity
        self._regions[name] = region
        return region

    def regions(self) -> dict[str, Region]:
        """A shallow copy of the region table (for reporting)."""
        return dict(self._regions)

    def high_water_limit(self, page: int) -> int | None:
        """End of the ever-allocated space of the region containing
        ``page`` (its base plus bump pointer), or ``None`` when the page
        lies in no region.  Pages at or beyond the limit were never
        handed out — a speculative read of them would transfer storage
        that does not exist."""
        for region in self._regions.values():
            if region.base <= page < region.base + region.capacity:
                return region.base + region.high_water_pages
        return None

    def in_allocated_space(self, page: int) -> bool:
        """Whether ``page`` lies below its region's high-water mark
        (the prefetch clamp: only such pages may be read ahead)."""
        limit = self.high_water_limit(page)
        return limit is not None and page < limit

    @property
    def total_allocated_pages(self) -> int:
        return sum(r.allocated_pages for r in self._regions.values())
