"""Table 1: the maps and the test series.

Regenerates the dataset-characteristics table: object counts, average
object sizes, total volume and ``Smax`` per series, comparing the
synthetic maps against the paper's values (counts are scaled by the
configured ``REPRO_SCALE``; sizes and ``Smax`` are scale-free).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.series import TABLE1
from repro.eval.context import ExperimentContext
from repro.eval.report import format_table

__all__ = ["Table1Row", "run_table1", "format_table1"]


@dataclass(slots=True)
class Table1Row:
    key: str
    n_objects: int
    paper_avg_size: int
    measured_avg_size: float
    total_mb: float
    smax_kb: int


def run_table1(ctx: ExperimentContext) -> list[Table1Row]:
    rows: list[Table1Row] = []
    for key in TABLE1:
        spec = ctx.config.spec(key)
        objects = ctx.objects(key)
        total = sum(o.size_bytes for o in objects)
        rows.append(
            Table1Row(
                key=key,
                n_objects=len(objects),
                paper_avg_size=spec.avg_object_size,
                measured_avg_size=total / len(objects),
                total_mb=total / 1e6,
                smax_kb=spec.smax_kb,
            )
        )
    return rows


def format_table1(rows: list[Table1Row], scale: float) -> str:
    return format_table(
        ["series-map", "#objects", "avg size (paper)", "avg size (measured)",
         "total MB", "Smax KB"],
        [
            (r.key, r.n_objects, r.paper_avg_size,
             round(r.measured_avg_size, 1), round(r.total_mb, 1), r.smax_kb)
            for r in rows
        ],
        title=f"Table 1 — maps and test series (scale={scale})",
    )
