"""Aggregated query metrics.

The paper normalises query cost to the amount of data queried, because
the individual queries vary strongly in their accessed volume: the
reported unit is **milliseconds of I/O per 4 KB of retrieved object
data** (Figures 8, 10 and 12).  Aggregation happens over the whole
workload: total I/O time divided by total retrieved volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import PAGE_SIZE
from repro.geometry.rect import Rect
from repro.storage.base import QueryResult, SpatialOrganization

__all__ = ["WorkloadAggregate", "run_window_queries", "run_point_queries"]


@dataclass(slots=True)
class WorkloadAggregate:
    """Sums over one query workload."""

    queries: int = 0
    io_ms: float = 0.0
    bytes_retrieved: int = 0
    answers: int = 0
    candidates: int = 0
    exact_tests: int = 0

    @property
    def ms_per_4kb(self) -> float:
        """The paper's normalised metric over the whole workload."""
        units = self.bytes_retrieved / PAGE_SIZE
        if units <= 0:
            return float("inf")
        return self.io_ms / units

    @property
    def answers_per_query(self) -> float:
        return self.answers / self.queries if self.queries else 0.0


def _accumulate(agg: WorkloadAggregate, result: QueryResult) -> None:
    agg.queries += 1
    agg.io_ms += result.io.total_ms
    agg.bytes_retrieved += result.bytes_retrieved
    agg.answers += len(result.objects)
    agg.candidates += result.candidates
    agg.exact_tests += result.exact_tests


def run_window_queries(
    org: SpatialOrganization, windows: list[Rect]
) -> WorkloadAggregate:
    """Execute a window workload and aggregate its costs.

    The workload runs through the organization's batch entry point
    (one flat-tree traversal, merged per-query access plans); the
    per-query results — and therefore every aggregate — are identical
    to looping ``window_query`` (the batch path falls back to exactly
    that whenever it cannot guarantee bit-identical pricing)."""
    agg = WorkloadAggregate()
    for result in org.window_query_batch(windows):
        _accumulate(agg, result)
    return agg


def run_point_queries(
    org: SpatialOrganization, points: list[tuple[float, float]]
) -> WorkloadAggregate:
    """Execute a point workload and aggregate its costs (batched like
    :func:`run_window_queries`)."""
    agg = WorkloadAggregate()
    for result in org.point_query_batch(points):
        _accumulate(agg, result)
    return agg
