"""Cluster-size adaptation (Figure 11, after Dröge & Schek [DS93]).

Should the cluster size adapt to the query size?  The experiment:

1. for each window area, sweep the cluster size (``Smax``) and find the
   best-performing size ``s1``;
2. change the window area by a factor 10 / 100 and find the best size
   ``s2`` for the *changed* area;
3. the *adaptation gain* is how much cost using ``s1`` (the size tuned
   for the old queries) loses against ``s2`` — i.e. what an adaptive
   scheme could recover.

Expected shape (B-1): with the ``complete`` technique the gain reaches
~23 % for a factor-100 change; with the threshold or SLM technique the
gain shrinks to ~6–11 %, so adaptation "does not seem to be essential".
The exceptional ``0.001 % → 0.1 %`` transition (small best size, much
bigger queries later) is reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.organization import ClusterOrganization
from repro.eval.context import ExperimentContext
from repro.eval.metrics import run_window_queries
from repro.eval.report import format_table

__all__ = ["AdaptationResult", "run_fig11_adaptation", "format_fig11"]

_SWEEP_PAGES = (5, 10, 20, 40, 80, 160)
_BASE_AREAS = (1e-5, 1e-4, 1e-3, 1e-2)
_TECHNIQUES = ("complete", "threshold", "slm")


@dataclass(slots=True)
class AdaptationResult:
    technique: str
    gain_factor_10: float  # average % cost reduction from adapting
    gain_factor_100: float
    gain_small_to_large: float  # the 0.001% -> 0.1% transition


def _cost(
    ctx: ExperimentContext,
    series: str,
    smax_pages: int,
    technique: str,
    area: float,
) -> float:
    """Aggregated window cost of one (cluster size, technique, area)."""
    org = ctx.org("cluster", series, smax_bytes=smax_pages * 4096)
    assert isinstance(org, ClusterOrganization)
    original = org.technique
    try:
        org.technique = technique
        agg = run_window_queries(org, ctx.windows(series, area))
        return agg.ms_per_4kb
    finally:
        org.technique = original


def run_fig11_adaptation(
    ctx: ExperimentContext,
    series: str = "B-1",
    sweep_pages: tuple[int, ...] = _SWEEP_PAGES,
    base_areas: tuple[float, ...] = _BASE_AREAS,
    techniques: tuple[str, ...] = _TECHNIQUES,
) -> list[AdaptationResult]:
    results: list[AdaptationResult] = []
    for technique in techniques:
        # cost[area][pages]
        cost: dict[float, dict[int, float]] = {}
        areas_needed = set()
        for area in base_areas:
            for factor in (1.0, 10.0, 100.0):
                target = area * factor
                if target <= 0.1:
                    areas_needed.add(target)
        for area in sorted(areas_needed):
            cost[area] = {
                pages: _cost(ctx, series, pages, technique, area)
                for pages in sweep_pages
            }

        def best_size(area: float) -> int:
            return min(cost[area], key=lambda pages: cost[area][pages])

        def gain(base_area: float, factor: float) -> float | None:
            """Percent saved by re-tuning the cluster size after the
            window area changed by ``factor``."""
            target = base_area * factor
            if target not in cost or base_area not in cost:
                return None
            s1 = best_size(base_area)
            s2 = best_size(target)
            c1 = cost[target][s1]  # stuck with the old size
            c2 = cost[target][s2]  # adapted size
            if c1 <= 0:
                return 0.0
            return (c1 - c2) / c1 * 100.0

        gains_10 = [g for a in base_areas if (g := gain(a, 10.0)) is not None]
        gains_100 = [g for a in base_areas if (g := gain(a, 100.0)) is not None]
        special = gain(1e-5, 100.0)  # the 0.001% -> 0.1% transition
        results.append(
            AdaptationResult(
                technique=technique,
                gain_factor_10=sum(gains_10) / len(gains_10) if gains_10 else 0.0,
                gain_factor_100=sum(gains_100) / len(gains_100) if gains_100 else 0.0,
                gain_small_to_large=special if special is not None else 0.0,
            )
        )
    return results


def format_fig11(results: list[AdaptationResult]) -> str:
    return format_table(
        ["technique", "gain factor 10 (%)", "gain factor 100 (%)",
         "gain 0.001%->0.1% (%)"],
        [
            (r.technique, r.gain_factor_10, r.gain_factor_100,
             r.gain_small_to_large)
            for r in results
        ],
        title="Figure 11 — performance gains from adapting the cluster size (B-1)",
    )
