"""Experiment configuration.

The paper's testbed holds 131 k objects per map; a pure-Python simulator
reproduces the same *shapes* (speed-up factors, crossovers) at a reduced
cardinality because every reported metric is simulated I/O that scales
linearly with the object count.  ``REPRO_SCALE`` (default 0.08, i.e.
about 10,500 objects per map) controls the reduction; buffer sizes and
query counts scale along so that cache-to-data ratios stay faithful.
Set ``REPRO_SCALE=1`` to run the paper's full cardinality (hours).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.data.series import SeriesSpec, scaled, spec_for
from repro.errors import ConfigurationError

__all__ = ["ExperimentConfig", "DEFAULT_SCALE", "PAPER_JOIN_BUFFERS"]

DEFAULT_SCALE = 0.08

PAPER_JOIN_BUFFERS = (200, 400, 800, 1600, 3200, 6400)
"""Join buffer sizes in pages (the x-axis of Figures 14 and 16)."""


def _env_scale() -> float:
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return DEFAULT_SCALE
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(f"REPRO_SCALE must be a float, got {raw!r}")
    if not (0.0 < value <= 1.0):
        raise ConfigurationError(f"REPRO_SCALE must be in (0, 1], got {value}")
    return value


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Scaling knobs shared by every experiment driver."""

    scale: float = field(default_factory=_env_scale)
    seed: int = 1994
    queries_at_full_scale: int = 678  # Section 5.4
    construction_buffer_at_full_scale: int = 64

    def spec(self, key: str) -> SeriesSpec:
        """The scaled Table 1 spec for e.g. ``"A-1"``."""
        return scaled(spec_for(key), self.scale)

    @property
    def n_queries(self) -> int:
        """Scaled query count per window size (at least 30 so averages
        stay meaningful)."""
        return max(30, int(self.queries_at_full_scale * self.scale))

    @property
    def construction_buffer_pages(self) -> int:
        """Construction-time data-page buffer, scaled so its ratio to
        the tree size matches the full-scale setup."""
        return max(8, int(self.construction_buffer_at_full_scale * self.scale))

    def join_buffer(self, pages_at_full_scale: int) -> int:
        """A Figure 14/16 buffer size, scaled with the data."""
        return max(8, int(pages_at_full_scale * self.scale))

    @property
    def join_buffers(self) -> list[int]:
        return [self.join_buffer(b) for b in PAPER_JOIN_BUFFERS]
