"""Construction cost and storage utilization (Figures 5, 6 and 7).

* **Figure 5** — I/O cost of building each organization model over all
  six test series with unsorted input.  Expected shape: the cluster
  organization is cheapest (no leaf reinserts, and the cluster split
  copies objects with single large requests); the primary organization
  is most expensive and grows strongly with the object size.
* **Figure 6** — storage utilization measured in occupied pages: the
  secondary organization's byte-packed file is best; the plain cluster
  organization is worst (every unit binds a full ``Smax`` extent).
* **Figure 7** — the restricted buddy system (3 buddy sizes) brings the
  cluster organization's utilization to roughly the primary
  organization's level at only slightly higher construction cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.context import ORG_NAMES, ExperimentContext
from repro.eval.report import format_table

__all__ = [
    "ConstructionRow",
    "run_fig5_construction",
    "format_fig5",
    "StorageRow",
    "run_fig6_storage",
    "format_fig6",
    "BuddyRow",
    "run_fig7_buddy",
    "format_fig7",
]

_ALL_SERIES = ("A-1", "B-1", "C-1", "A-2", "B-2", "C-2")
_MAP1_SERIES = ("A-1", "B-1", "C-1")


@dataclass(slots=True)
class ConstructionRow:
    series: str
    secondary_s: float
    primary_s: float
    cluster_s: float


def run_fig5_construction(
    ctx: ExperimentContext, series: tuple[str, ...] = _ALL_SERIES
) -> list[ConstructionRow]:
    rows: list[ConstructionRow] = []
    for key in series:
        costs = {
            name: ctx.org(name, key).construction_io.total_s
            for name in ORG_NAMES
        }
        rows.append(
            ConstructionRow(
                key, costs["secondary"], costs["primary"], costs["cluster"]
            )
        )
    return rows


def format_fig5(rows: list[ConstructionRow]) -> str:
    return format_table(
        ["series", "sec. org (s)", "prim. org (s)", "cluster org (s)"],
        [(r.series, r.secondary_s, r.primary_s, r.cluster_s) for r in rows],
        title="Figure 5 — I/O cost for constructing the organization models",
    )


@dataclass(slots=True)
class StorageRow:
    series: str
    secondary_pages: int
    primary_pages: int
    cluster_pages: int


def run_fig6_storage(
    ctx: ExperimentContext, series: tuple[str, ...] = _ALL_SERIES
) -> list[StorageRow]:
    rows: list[StorageRow] = []
    for key in series:
        pages = {
            name: ctx.org(name, key).occupied_pages() for name in ORG_NAMES
        }
        rows.append(
            StorageRow(
                key, pages["secondary"], pages["primary"], pages["cluster"]
            )
        )
    return rows


def format_fig6(rows: list[StorageRow]) -> str:
    return format_table(
        ["series", "sec. org (pages)", "prim. org (pages)", "cluster org (pages)"],
        [
            (r.series, r.secondary_pages, r.primary_pages, r.cluster_pages)
            for r in rows
        ],
        title="Figure 6 — storage utilization (occupied pages)",
    )


@dataclass(slots=True)
class BuddyRow:
    series: str
    fixed_pages: int
    buddy_pages: int
    primary_pages: int
    fixed_construction_s: float
    buddy_construction_s: float
    buddy_moves: int


def run_fig7_buddy(
    ctx: ExperimentContext, series: tuple[str, ...] = _MAP1_SERIES
) -> list[BuddyRow]:
    """Cluster organization with the restricted buddy system (3 sizes:
    ``Smax``, ``Smax/2``, ``Smax/4``) against the fixed-unit variant."""
    rows: list[BuddyRow] = []
    for key in series:
        fixed = ctx.org("cluster", key)
        buddy = ctx.org("cluster", key, buddy_sizes=3)
        primary = ctx.org("primary", key)
        rows.append(
            BuddyRow(
                series=key,
                fixed_pages=fixed.occupied_pages(),
                buddy_pages=buddy.occupied_pages(),
                primary_pages=primary.occupied_pages(),
                fixed_construction_s=fixed.construction_io.total_s,
                buddy_construction_s=buddy.construction_io.total_s,
                buddy_moves=getattr(buddy, "unit_moves", 0),
            )
        )
    return rows


def format_fig7(rows: list[BuddyRow]) -> str:
    return format_table(
        ["series", "fixed (pages)", "buddy (pages)", "primary (pages)",
         "fixed constr (s)", "buddy constr (s)", "moves"],
        [
            (r.series, r.fixed_pages, r.buddy_pages, r.primary_pages,
             r.fixed_construction_s, r.buddy_construction_s, r.buddy_moves)
            for r in rows
        ],
        title="Figure 7 — restricted buddy system: utilization and construction cost",
    )
