"""Window-query experiments (Figures 8 and 10).

* **Figure 8** — the three organization models over window areas from
  0.001 % to 10 % of the data space, on the smallest-object (A-1) and
  largest-object (C-1) series.  Expected shape: the larger the window,
  the stronger the cluster organization wins (speed-ups up to 20 for
  A-1); the primary organization lands between the two and profits most
  on small objects.
* **Figure 10** — the query techniques (complete / threshold / SLM /
  optimum) within the cluster organization.  Expected shape: visible
  savings only for the most selective queries on large cluster units
  (C-1), where SLM approaches the optimum; no difference from 0.1 %
  upward.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.organization import ClusterOrganization
from repro.data.workload import PAPER_WINDOW_AREAS
from repro.eval.context import ORG_NAMES, ExperimentContext
from repro.eval.metrics import WorkloadAggregate, run_window_queries
from repro.eval.report import format_table

__all__ = [
    "WindowRow",
    "run_fig8_windows",
    "format_fig8",
    "TechniqueRow",
    "run_fig10_techniques",
    "format_fig10",
]

FIG10_TECHNIQUES = ("complete", "threshold", "slm", "optimum")


@dataclass(slots=True)
class WindowRow:
    series: str
    area_fraction: float
    per_org: dict[str, WorkloadAggregate]

    @property
    def speedup_vs_secondary(self) -> float:
        sec = self.per_org["secondary"].ms_per_4kb
        clu = self.per_org["cluster"].ms_per_4kb
        return sec / clu if clu > 0 else float("inf")


def run_fig8_windows(
    ctx: ExperimentContext,
    series: tuple[str, ...] = ("A-1", "C-1"),
    areas: tuple[float, ...] = PAPER_WINDOW_AREAS,
) -> list[WindowRow]:
    rows: list[WindowRow] = []
    for key in series:
        for area in areas:
            windows = ctx.windows(key, area)
            per_org = {
                name: run_window_queries(ctx.org(name, key), windows)
                for name in ORG_NAMES
            }
            rows.append(WindowRow(key, area, per_org))
    return rows


def format_fig8(rows: list[WindowRow]) -> str:
    return format_table(
        ["series", "window area", "sec (ms/4KB)", "prim (ms/4KB)",
         "cluster (ms/4KB)", "speedup vs sec", "answers/query"],
        [
            (
                r.series,
                f"{r.area_fraction * 100:g}%",
                r.per_org["secondary"].ms_per_4kb,
                r.per_org["primary"].ms_per_4kb,
                r.per_org["cluster"].ms_per_4kb,
                r.speedup_vs_secondary,
                r.per_org["cluster"].answers_per_query,
            )
            for r in rows
        ],
        title="Figure 8 — window queries across organization models",
    )


@dataclass(slots=True)
class TechniqueRow:
    series: str
    area_fraction: float
    per_technique: dict[str, WorkloadAggregate]


def run_fig10_techniques(
    ctx: ExperimentContext,
    series: tuple[str, ...] = ("A-1", "C-1"),
    areas: tuple[float, ...] = PAPER_WINDOW_AREAS,
    techniques: tuple[str, ...] = FIG10_TECHNIQUES,
) -> list[TechniqueRow]:
    """The cluster organization under different read techniques.

    The technique only affects how units are transferred, so one built
    organization is re-queried with the attribute switched.
    """
    rows: list[TechniqueRow] = []
    for key in series:
        org = ctx.org("cluster", key)
        assert isinstance(org, ClusterOrganization)
        original = org.technique
        try:
            for area in areas:
                windows = ctx.windows(key, area)
                per_technique: dict[str, WorkloadAggregate] = {}
                for technique in techniques:
                    org.technique = technique
                    per_technique[technique] = run_window_queries(org, windows)
                rows.append(TechniqueRow(key, area, per_technique))
        finally:
            org.technique = original
    return rows


def format_fig10(rows: list[TechniqueRow]) -> str:
    techniques = list(rows[0].per_technique) if rows else []
    return format_table(
        ["series", "window area"] + [f"{t} (ms/4KB)" for t in techniques],
        [
            [r.series, f"{r.area_fraction * 100:g}%"]
            + [r.per_technique[t].ms_per_4kb for t in techniques]
            for r in rows
        ],
        title="Figure 10 — query techniques for window queries (cluster org)",
    )
