"""Run the full evaluation from the command line.

::

    python -m repro.eval [--scale 0.08] [--only fig8,fig12,...]

Regenerates every table and figure of the paper in sequence and prints
the report tables.  Individual experiments can be selected with
``--only`` (names: table1, fig5, fig6, fig7, fig8, fig10, fig11,
fig12, fig14, fig16, fig17).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.adaptation import format_fig11, run_fig11_adaptation
from repro.eval.config import ExperimentConfig
from repro.eval.construction import (
    format_fig5,
    format_fig6,
    format_fig7,
    run_fig5_construction,
    run_fig6_storage,
    run_fig7_buddy,
)
from repro.eval.context import ExperimentContext
from repro.eval.joins import (
    format_fig14,
    format_fig16,
    format_fig17,
    run_fig14_join_orgs,
    run_fig16_join_techniques,
    run_fig17_complete_join,
)
from repro.eval.point import format_fig12, run_fig12_points
from repro.eval.report import format_header
from repro.eval.table1 import format_table1, run_table1
from repro.eval.window import (
    format_fig8,
    format_fig10,
    run_fig8_windows,
    run_fig10_techniques,
)

EXPERIMENTS = {
    "table1": lambda ctx: format_table1(run_table1(ctx), ctx.config.scale),
    "fig5": lambda ctx: format_fig5(run_fig5_construction(ctx)),
    "fig6": lambda ctx: format_fig6(run_fig6_storage(ctx)),
    "fig7": lambda ctx: format_fig7(run_fig7_buddy(ctx)),
    "fig8": lambda ctx: format_fig8(run_fig8_windows(ctx)),
    "fig10": lambda ctx: format_fig10(run_fig10_techniques(ctx)),
    "fig11": lambda ctx: format_fig11(run_fig11_adaptation(ctx)),
    "fig12": lambda ctx: format_fig12(run_fig12_points(ctx)),
    "fig14": lambda ctx: format_fig14(run_fig14_join_orgs(ctx)),
    "fig16": lambda ctx: format_fig16(run_fig16_join_techniques(ctx)),
    "fig17": lambda ctx: format_fig17(run_fig17_complete_join(ctx)),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale in (0, 1] (default: REPRO_SCALE or 0.08)",
    )
    parser.add_argument(
        "--seed", type=int, default=1994, help="dataset seed (default 1994)"
    )
    parser.add_argument(
        "--only",
        type=str,
        default=None,
        help="comma-separated experiment names "
        f"(valid: {', '.join(EXPERIMENTS)})",
    )
    args = parser.parse_args(argv)

    if args.scale is not None:
        config = ExperimentConfig(scale=args.scale, seed=args.seed)
    else:
        config = ExperimentConfig(seed=args.seed)
    ctx = ExperimentContext(config)

    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiments: {unknown}")
    else:
        names = list(EXPERIMENTS)

    print(
        format_header(
            "Brinkhoff & Kriegel, VLDB 1994 — reproduction "
            f"(scale={config.scale}, seed={config.seed})"
        )
    )
    for name in names:
        start = time.time()
        table = EXPERIMENTS[name](ctx)
        print()
        print(table)
        print(f"[{name}: {time.time() - start:.1f}s wall]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
