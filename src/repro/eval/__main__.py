"""Run the full evaluation from the command line.

::

    python -m repro.eval [--scale 0.08] [--only fig8,fig12,...]
    python -m repro.eval workload [--policies lru,clock] [--scale 0.02] [--profile]
    python -m repro.eval pagestore [--disks 1,2,4,8] [--placements spatial]
    python -m repro.eval iosched [--schedulers sync,overlap] [--prefetch none,cluster]
                                 [--admission none,priority]
    python -m repro.eval traffic [--sessions 100000] [--arrival poisson] [--ablation]
    python -m repro.eval tiering [--migrations none,static,promote-on-hit,lru-demote]
    python -m repro.eval bench [--scale 0.02] [--repeat 5] [--output BENCH_query_kernels.json]
    python -m repro.eval trace [--trace-out trace.json] [--metrics-out metrics.json]
    python -m repro.eval storage [--scale 0.02] [--path db.dat]
                                 [--report-out storage_report.json]
    python -m repro.eval reorg [--sessions 2000] [--budget-pages 64]
                               [--rounds 40] [--delete-fraction 0.5]

The default mode regenerates every table and figure of the paper in
sequence and prints the report tables; individual experiments can be
selected with ``--only`` (names: table1, fig5, fig6, fig7, fig8,
fig10, fig11, fig12, fig14, fig16, fig17).

The ``workload`` subcommand runs a batched mixed operation stream
(window queries, point queries, inserts, deletes and a spatial join)
through the shared buffer pool under one or more replacement policies
and prints per-phase I/O statistics and hit rates; ``--trace PATH``
makes the run replayable (records the stream to PATH, or replays PATH
if it already exists).

The ``pagestore`` subcommand measures the sharded multi-disk page
store: window-query device time, response time and achieved
parallelism across disk counts and declustering placements.

The ``iosched`` subcommand ablates the request-based I/O pipeline:
two client sessions run interleaved over a declustered store under
each (scheduler, prefetch, admission) combination, reporting device
time, summed client response, per-client queueing delay and p95
latency, workload makespan and the speed-up of overlapped asynchronous
service over the synchronous baseline.

The ``traffic`` subcommand generates arrival-process traffic —
open-loop Poisson/bursty/diurnal or closed-loop think-time sessions,
10^4-10^5 of them — over the overlap scheduler's virtual clock and
reports per-class (interactive/analytics) latency percentiles and
open-loop throughput; ``--ablation`` compares admission ``none`` vs
``priority`` at the base arrival rate and at 10x overload.

The ``tiering`` subcommand ablates the tiered page store: a skewed
window workload (most queries hammer a hot corner of the data space)
runs over each migration policy of the fast-tier/capacity-tier store
and reports device time, response time and the migration counters.

The ``bench`` subcommand measures *wall-clock* CPU time of the
vectorized query kernels against the ``REPRO_SCALAR_KERNELS``
fallback (see :mod:`repro.bench`) and writes
``BENCH_query_kernels.json``; ``--profile`` on the workload, iosched
and tiering subcommands prints the top cProfile entries of the run so
perf work can find the next hot spot, and ``--profile-out PATH``
additionally writes the raw pstats dump for offline analysis
(``python -m pstats PATH``, snakeviz, ...).

The ``trace`` subcommand runs a canonical two-client overlapped
workload with the :mod:`repro.obs` span tracer installed and writes a
Chrome trace-event / Perfetto JSON timeline (one track per client
session, one per disk arm; open it at https://ui.perfetto.dev) plus a
flattened metrics snapshot, then cross-checks the exported per-disk
span totals against the device time the :class:`DiskStats` accounting
measured.  The same artifacts can be captured from the workload,
iosched and tiering subcommands with ``--trace-out`` /
``--metrics-out``.

The ``storage`` subcommand exercises the durable file-backed page
store end to end: it saves a built database to a real single-file page
image, reopens it with ``backing="file"`` and cross-validates answers
and simulated pricing against the in-memory store (reporting measured
wall-clock alongside the simulated cost), then runs the crash
ablation — an incremental re-save is killed at sampled write
boundaries (clean and torn variants) and the reopened file must answer
every query from the last durably committed checkpoint; a persistent
bit flip must surface as :class:`~repro.errors.PageCorruptionError`.
``--report-out`` writes the machine-readable report CI archives.

The ``reorg`` subcommand measures background reorganization as a paced
workload: a cluster database is degraded by online deletes (dead space
accumulates in the cluster units), then identical foreground traffic
runs once without and once with interleaved ``ana-reorg-`` sessions
(:class:`~repro.reorg.Reorganizer` rounds paced by priority admission);
it reports the clustering-quality recovery, the pages the reorganizer
moved (``reorg.*`` metrics) and the foreground p95 interference ratio.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.adaptation import format_fig11, run_fig11_adaptation
from repro.eval.config import ExperimentConfig
from repro.eval.construction import (
    format_fig5,
    format_fig6,
    format_fig7,
    run_fig5_construction,
    run_fig6_storage,
    run_fig7_buddy,
)
from repro.eval.context import ExperimentContext
from repro.eval.joins import (
    format_fig14,
    format_fig16,
    format_fig17,
    run_fig14_join_orgs,
    run_fig16_join_techniques,
    run_fig17_complete_join,
)
from repro.eval.point import format_fig12, run_fig12_points
from repro.eval.report import format_header, format_table
from repro.eval.table1 import format_table1, run_table1
from repro.eval.window import (
    format_fig8,
    format_fig10,
    run_fig8_windows,
    run_fig10_techniques,
)

EXPERIMENTS = {
    "table1": lambda ctx: format_table1(run_table1(ctx), ctx.config.scale),
    "fig5": lambda ctx: format_fig5(run_fig5_construction(ctx)),
    "fig6": lambda ctx: format_fig6(run_fig6_storage(ctx)),
    "fig7": lambda ctx: format_fig7(run_fig7_buddy(ctx)),
    "fig8": lambda ctx: format_fig8(run_fig8_windows(ctx)),
    "fig10": lambda ctx: format_fig10(run_fig10_techniques(ctx)),
    "fig11": lambda ctx: format_fig11(run_fig11_adaptation(ctx)),
    "fig12": lambda ctx: format_fig12(run_fig12_points(ctx)),
    "fig14": lambda ctx: format_fig14(run_fig14_join_orgs(ctx)),
    "fig16": lambda ctx: format_fig16(run_fig16_join_techniques(ctx)),
    "fig17": lambda ctx: format_fig17(run_fig17_complete_join(ctx)),
}


from contextlib import contextmanager


@contextmanager
def _profiled(active: bool, out: str | None = None, label: str = ""):
    """Run the block under cProfile when requested.

    Prints the top-15 cumulative-time entries; when ``out`` is given the
    raw pstats dump is written there as well (readable with
    ``python -m pstats``).  A no-op when neither is requested.
    """
    if not active and out is None:
        yield
        return
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(15)
        print()
        suffix = f" ({label})" if label else ""
        print(f"--- cProfile top 15 by cumulative time{suffix} ---")
        print(buf.getvalue())
        if out is not None:
            profiler.dump_stats(out)
            print(f"[profile: raw pstats dump written to {out}]")


def _tagged(path: str | None, tag: str, multi: bool) -> str | None:
    """Suffix an output path per configuration when a subcommand runs
    several (``trace.json`` -> ``trace.lru.json`` for policy ``lru``)."""
    if path is None or not multi:
        return path
    import os

    root, ext = os.path.splitext(path)
    safe = tag.replace("/", "-").replace(" ", "-")
    return f"{root}.{safe}{ext}" if ext else f"{path}.{safe}"


def _export_obs(tracer, metrics, trace_out, metrics_out, extra=None) -> None:
    """Write and validate the Chrome trace and/or metrics snapshot."""
    from repro.obs import validate_chrome_trace, write_chrome_trace

    if trace_out is not None and tracer is not None:
        data = write_chrome_trace(trace_out, tracer)
        counts = validate_chrome_trace(data)
        rendered = ", ".join(f"{k}:{v}" for k, v in sorted(counts.items()))
        print(f"[trace: {sum(counts.values())} events ({rendered}) -> {trace_out}]")
    if metrics_out is not None and metrics is not None:
        metrics.write(metrics_out, extra=extra)
        print(f"[metrics: {len(metrics)} metrics -> {metrics_out}]")


def workload_main(argv: list[str]) -> int:
    """The ``workload`` subcommand: batched mixed streams over the
    shared buffer pool, under one or more replacement policies."""
    from repro.buffer.policy import POLICIES
    from repro.data.tiger import generate_map
    from repro.database import SpatialDatabase
    from repro.errors import ConfigurationError
    from repro.workload.streams import mixed_stream
    from repro.workload.trace import load_trace, save_trace

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval workload",
        description="Run a batched mixed workload through the shared "
        "buffer pool and report per-phase I/O and hit rates.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale in (0, 1] (default: REPRO_SCALE or 0.08)",
    )
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument(
        "--series", type=str, default="A-1", help="Table 1 series (default A-1)"
    )
    parser.add_argument(
        "--organization", type=str, default="cluster",
        help="cluster / secondary / primary (default cluster)",
    )
    parser.add_argument(
        "--buffer-pages", type=int, default=400,
        help="shared pool size in page frames (default 400)",
    )
    parser.add_argument(
        "--policies", type=str, default="lru,clock",
        help=f"comma-separated replacement policies (valid: {', '.join(POLICIES)})",
    )
    parser.add_argument(
        "--queries", type=int, default=60,
        help="window and point queries each (default 60)",
    )
    parser.add_argument(
        "--no-join", action="store_true",
        help="skip the spatial-join operation at the end of the stream",
    )
    parser.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="JSONL workload trace: replayed when PATH exists, recorded "
        "there otherwise (runs become replayable)",
    )
    parser.add_argument(
        "--scheduler", type=str, default="sync",
        help="I/O scheduler servicing access plans: sync (default, the "
        "paper's pricing) or overlap (virtual-clock async simulation)",
    )
    parser.add_argument(
        "--prefetch", type=str, default="none",
        help="read-ahead policy: none (default), sequential or cluster",
    )
    parser.add_argument(
        "--disks", type=int, default=1,
        help="number of disks behind the buffer pool (default 1)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top-15 cumulative-time "
        "entries (per policy), so perf PRs can find the next hot spot",
    )
    parser.add_argument(
        "--profile-out", type=str, default=None, metavar="PATH",
        help="write the raw cProfile pstats dump to PATH (implies "
        "--profile; with several policies a .<policy> suffix is added)",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="run under the span tracer and write a Chrome trace-event "
        "/ Perfetto JSON timeline to PATH (per policy, suffixed when "
        "several policies run)",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the flattened metrics-registry snapshot as JSON to "
        "PATH (per policy, suffixed when several policies run)",
    )
    args = parser.parse_args(argv)

    from repro.iosched import PREFETCHERS, SCHEDULERS

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    unknown = [p for p in policies if p not in POLICIES]
    if unknown:
        parser.error(f"unknown policies: {unknown}; valid: {tuple(POLICIES)}")
    if args.scheduler not in SCHEDULERS:
        parser.error(
            f"unknown scheduler '{args.scheduler}'; valid: {SCHEDULERS}"
        )
    if args.prefetch not in PREFETCHERS:
        parser.error(
            f"unknown prefetch policy '{args.prefetch}'; valid: {PREFETCHERS}"
        )

    if args.scale is not None:
        config = ExperimentConfig(scale=args.scale, seed=args.seed)
    else:
        config = ExperimentConfig(seed=args.seed)
    spec = config.spec(args.series)
    objects = generate_map(spec, seed=config.seed)
    # Hold the tail of the map out of the build: the stream inserts it.
    held_out = max(1, len(objects) // 50)
    resident, incoming = objects[:-held_out], objects[-held_out:]

    import os

    replay = args.trace is not None and os.path.exists(args.trace)
    recorded = False

    print(
        format_header(
            f"batched workload — {args.organization} organization, "
            f"{args.series} (scale={config.scale}), "
            f"{args.buffer_pages}-page pool"
        )
    )
    summary: list[tuple[str, float, float]] = []
    for policy in policies:
        db_kwargs = dict(
            organization=args.organization,
            name="r",
            n_disks=args.disks,
            scheduler=args.scheduler,
            prefetch=args.prefetch,
        )
        if args.organization == "cluster":
            db_kwargs["smax_bytes"] = spec.smax_bytes
        db = SpatialDatabase(**db_kwargs)
        db.build(resident)
        join_target = None
        if not args.no_join:
            other_key = f"{args.series[:-1]}2" if args.series.endswith("1") else args.series
            other_spec = config.spec(other_key)
            attach_kwargs = dict(organization=args.organization)
            if args.organization == "cluster":
                attach_kwargs["smax_bytes"] = other_spec.smax_bytes
            join_target = db.attach("s", **attach_kwargs)
            join_target.build(
                generate_map(other_spec, seed=config.seed, id_offset=10_000_000)
            )
        if replay:
            try:
                stream = load_trace(args.trace, join_with=join_target)
            except ConfigurationError as exc:
                hint = (
                    " (recorded with a join: run without --no-join)"
                    if join_target is None and "join" in str(exc)
                    else ""
                )
                parser.error(f"cannot replay {args.trace}: {exc}{hint}")
            print(f"[trace: replaying {len(stream)} operations from {args.trace}]")
        else:
            stream = mixed_stream(
                resident,
                n_windows=args.queries,
                n_points=args.queries,
                inserts=incoming,
                deletes=[o.oid for o in resident[: held_out // 2]],
                join_with=join_target,
                seed=config.seed + 17,
            )
            if args.trace is not None and not recorded:
                recorded = True
                count = save_trace(stream, args.trace)
                print(f"[trace: recorded {count} operations to {args.trace}]")
        multi = len(policies) > 1
        tracer = None
        if args.trace_out is not None:
            from repro.obs import Tracer, register_store_devices, tracing

            tracer = Tracer(label=f"workload:{policy}")
            register_store_devices(tracer, db.disk)
        profile_on = args.profile or args.profile_out is not None
        with _profiled(profile_on, _tagged(args.profile_out, policy, multi), policy):
            if tracer is not None:
                with tracing(tracer):
                    report = db.run_workload(
                        stream, buffer_pages=args.buffer_pages, policy=policy
                    )
            else:
                report = db.run_workload(
                    stream, buffer_pages=args.buffer_pages, policy=policy
                )
        _export_obs(
            tracer,
            db.metrics,
            _tagged(args.trace_out, policy, multi),
            _tagged(args.metrics_out, policy, multi),
            extra={"run": {"policy": policy, "hit_rate": report.hit_rate,
                           "device_ms": report.total_io.total_ms}},
        )
        print()
        print(report.format())
        print()
        print(
            format_table(
                ("phase", "ops", "p50 ms", "p95 ms"),
                [
                    (p.kind, p.operations, p.p50_ms, p.p95_ms)
                    for p in report.phases
                ],
                title="operation latency percentiles",
            )
        )
        summary.append((policy, report.hit_rate, report.total_io.total_ms))

    print()
    print(
        format_table(
            ("policy", "hit rate", "total io ms"),
            [(p, f"{h:.1%}", ms) for p, h, ms in summary],
            title="policy comparison",
        )
    )
    return 0


def pagestore_main(argv: list[str]) -> int:
    """The ``pagestore`` subcommand: window-query cost over the sharded
    multi-disk page store, across disk counts and placements."""
    from repro.data.tiger import generate_map
    from repro.data.workload import window_workload
    from repro.database import SpatialDatabase
    from repro.pagestore.placement import PLACEMENTS

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval pagestore",
        description="Measure declustered query execution: device time, "
        "response time and parallelism of window queries over the "
        "sharded page store.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale in (0, 1] (default: REPRO_SCALE or 0.08)",
    )
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument(
        "--series", type=str, default="A-1", help="Table 1 series (default A-1)"
    )
    parser.add_argument(
        "--disks", type=str, default="1,2,4,8",
        help="comma-separated disk counts (default 1,2,4,8)",
    )
    parser.add_argument(
        "--placements", type=str, default="spatial,round_robin,hash",
        help=f"comma-separated placements (valid: {', '.join(PLACEMENTS)})",
    )
    parser.add_argument(
        "--queries", type=int, default=60,
        help="window queries per configuration (default 60)",
    )
    parser.add_argument(
        "--window-area", type=float, default=1e-2,
        help="window area as a fraction of the data space (default 1e-2)",
    )
    args = parser.parse_args(argv)

    try:
        disk_counts = [int(d) for d in args.disks.split(",") if d.strip()]
    except ValueError:
        parser.error(f"--disks must be comma-separated integers: {args.disks!r}")
    if not disk_counts or min(disk_counts) < 1:
        parser.error(f"--disks needs positive disk counts: {args.disks!r}")
    placements = [p.strip() for p in args.placements.split(",") if p.strip()]
    unknown = [p for p in placements if p not in PLACEMENTS]
    if unknown:
        parser.error(f"unknown placements: {unknown}; valid: {tuple(PLACEMENTS)}")

    if args.scale is not None:
        config = ExperimentConfig(scale=args.scale, seed=args.seed)
    else:
        config = ExperimentConfig(seed=args.seed)
    spec = config.spec(args.series)
    objects = generate_map(spec, seed=config.seed)
    windows = window_workload(
        objects, args.window_area, n_queries=args.queries, seed=config.seed + 7
    )

    print(
        format_header(
            f"sharded page store — {args.series} (scale={config.scale}), "
            f"{len(windows)} windows of {args.window_area:g} area"
        )
    )
    rows = []
    seen: set[tuple[str, int]] = set()
    for placement in placements:
        for n_disks in disk_counts:
            # A single disk has no placement decision: run it once.
            key = (placement if n_disks > 1 else "(single disk)", n_disks)
            if key in seen:
                continue
            seen.add(key)
            db = SpatialDatabase(
                smax_bytes=spec.smax_bytes,
                n_disks=n_disks,
                placement=placement,
            )
            db.build(objects)
            build_s = db.storage.construction_io.total_s
            device = 0.0
            response = 0.0
            for window in windows:
                mark = db.disk.snapshot()
                db.storage.window_query(window)
                cost = db.disk.cost_since(mark)
                device += cost.total_ms
                response += cost.response_ms
            rows.append(
                (
                    placement if n_disks > 1 else "(single disk)",
                    n_disks,
                    build_s,
                    device,
                    response,
                    device / response if response else 1.0,
                )
            )
    print()
    print(
        format_table(
            (
                "placement",
                "disks",
                "build (s)",
                "device ms",
                "response ms",
                "parallelism",
            ),
            rows,
            title="declustered window-query execution",
        )
    )
    return 0


def iosched_main(argv: list[str]) -> int:
    """The ``iosched`` subcommand: two interleaved client sessions over
    a declustered store, ablated across I/O schedulers, prefetch
    policies and admission-control policies."""
    from repro.data.tiger import generate_map
    from repro.database import SpatialDatabase
    from repro.iosched import ADMISSIONS, PREFETCHERS, SCHEDULERS
    from repro.iosched.admission import PriorityAdmission
    from repro.workload.streams import mixed_stream

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval iosched",
        description="Ablate the request-based I/O pipeline: concurrent "
        "client sessions under sync vs overlapped (async-simulated) "
        "scheduling, with and without prefetching.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale in (0, 1] (default: REPRO_SCALE or 0.08)",
    )
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument(
        "--series", type=str, default="A-1", help="Table 1 series (default A-1)"
    )
    parser.add_argument(
        "--disks", type=int, default=4,
        help="disks behind the buffer pool (default 4)",
    )
    parser.add_argument(
        "--placement", type=str, default="spatial",
        help="declustering placement (default spatial)",
    )
    parser.add_argument(
        "--schedulers", type=str, default="sync,overlap",
        help=f"comma-separated schedulers (valid: {', '.join(SCHEDULERS)})",
    )
    parser.add_argument(
        "--prefetch", type=str, default="none,cluster",
        help=f"comma-separated prefetch policies (valid: {', '.join(PREFETCHERS)})",
    )
    parser.add_argument(
        "--admission", type=str, default="none",
        help="comma-separated admission policies applied to the overlap "
        f"scheduler (valid: {', '.join(ADMISSIONS)}; 'priority' marks "
        "the beta client as the analytics class); ignored for sync",
    )
    parser.add_argument(
        "--buffer-pages", type=int, default=400,
        help="shared pool size in page frames (default 400)",
    )
    parser.add_argument(
        "--queries", type=int, default=40,
        help="window queries per client (default 40)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the whole ablation under cProfile and print the "
        "top-15 cumulative-time entries",
    )
    parser.add_argument(
        "--profile-out", type=str, default=None, metavar="PATH",
        help="write the raw cProfile pstats dump to PATH (implies --profile)",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="trace each configuration and write Chrome trace-event "
        "JSON to PATH (suffixed .<sched>.<prefetch>.<admission> when "
        "several configurations run)",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write each configuration's metrics snapshot as JSON to "
        "PATH (suffixed like --trace-out)",
    )
    args = parser.parse_args(argv)

    schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    unknown = [s for s in schedulers if s not in SCHEDULERS]
    if unknown:
        parser.error(f"unknown schedulers: {unknown}; valid: {SCHEDULERS}")
    prefetchers = [p.strip() for p in args.prefetch.split(",") if p.strip()]
    unknown = [p for p in prefetchers if p not in PREFETCHERS]
    if unknown:
        parser.error(f"unknown prefetch policies: {unknown}; valid: {PREFETCHERS}")
    admissions = [a.strip() for a in args.admission.split(",") if a.strip()]
    unknown = [a for a in admissions if a not in ADMISSIONS]
    if unknown:
        parser.error(f"unknown admission policies: {unknown}; valid: {ADMISSIONS}")
    if args.disks < 1:
        parser.error(f"--disks needs a positive disk count: {args.disks!r}")

    if args.scale is not None:
        config = ExperimentConfig(scale=args.scale, seed=args.seed)
    else:
        config = ExperimentConfig(seed=args.seed)
    spec = config.spec(args.series)
    objects = generate_map(spec, seed=config.seed)

    def client_streams():
        return {
            "alpha": mixed_stream(
                objects, n_windows=args.queries, n_points=args.queries // 2,
                seed=config.seed + 3,
            ),
            "beta": mixed_stream(
                objects, n_windows=args.queries, n_points=args.queries // 2,
                seed=config.seed + 5,
            ),
        }

    print(
        format_header(
            f"I/O scheduler ablation — {args.series} (scale={config.scale}), "
            f"{args.disks} disks ({args.placement}), 2 interleaved clients, "
            f"{args.buffer_pages}-page pool"
        )
    )
    configs = [
        (scheduler, prefetch, admission)
        for scheduler in schedulers
        # Admission shapes dispatch on the virtual clock: the sync
        # scheduler has none, so only 'none' applies there.
        for prefetch in prefetchers
        for admission in (admissions if scheduler == "overlap" else ["none"])
    ]
    multi = len(configs) > 1
    measured = []
    profile_on = args.profile or args.profile_out is not None
    with _profiled(profile_on, args.profile_out, "iosched ablation"):
        for scheduler, prefetch, admission in configs:
            db = SpatialDatabase(
                smax_bytes=spec.smax_bytes,
                n_disks=args.disks,
                placement=args.placement,
                scheduler=scheduler,
                prefetch=prefetch,
            )
            db.build(objects)
            policy = admission
            if admission == "priority":
                policy = PriorityAdmission(classes={"beta": "analytics"})
            tracer = None
            if args.trace_out is not None:
                from repro.obs import Tracer, register_store_devices, tracing

                tracer = Tracer(label=f"iosched:{scheduler}.{prefetch}.{admission}")
                register_store_devices(tracer, db.disk)
            if tracer is not None:
                with tracing(tracer):
                    report = db.run_sessions(
                        client_streams(),
                        buffer_pages=args.buffer_pages,
                        admission=None if admission == "none" else policy,
                    )
            else:
                report = db.run_sessions(
                    client_streams(),
                    buffer_pages=args.buffer_pages,
                    admission=None if admission == "none" else policy,
                )
            tag = f"{scheduler}.{prefetch}.{admission}"
            _export_obs(
                tracer,
                db.metrics,
                _tagged(args.trace_out, tag, multi),
                _tagged(args.metrics_out, tag, multi),
                extra={"run": {"scheduler": scheduler, "prefetch": prefetch,
                               "admission": admission,
                               "makespan_ms": report.makespan_ms}},
            )
            measured.append((scheduler, prefetch, admission, report))
    # Speedups are relative to the synchronous un-prefetched baseline;
    # when that configuration was not requested, fall back to the first
    # one measured (then the column is only an internal comparison).
    baseline_ms = next(
        (
            r.makespan_ms
            for s, p, a, r in measured
            if s == "sync" and p == "none"
        ),
        measured[0][3].makespan_ms if measured else 0.0,
    )
    rows = [
        (
            scheduler,
            prefetch,
            admission,
            f"{report.hit_rate:.1%}",
            report.total_io.total_ms,
            report.total_response_ms,
            sum(c.queueing_ms for c in report.clients),
            max((c.p95_ms for c in report.clients), default=0.0),
            report.makespan_ms,
            baseline_ms / report.makespan_ms if report.makespan_ms else 1.0,
        )
        for scheduler, prefetch, admission, report in measured
    ]
    print()
    print(
        format_table(
            (
                "scheduler",
                "prefetch",
                "admission",
                "hit rate",
                "device ms",
                "client response ms",
                "queue ms",
                "p95 ms",
                "makespan ms",
                "speedup",
            ),
            rows,
            title="interleaved client sessions over the I/O scheduler",
        )
    )
    return 0


def traffic_main(argv: list[str]) -> int:
    """The ``traffic`` subcommand: generated arrival-process traffic
    (10^4-10^5 sessions) over the overlap scheduler, with an optional
    10x-overload admission ablation."""
    from repro.data.tiger import generate_map
    from repro.database import SpatialDatabase
    from repro.iosched import ADMISSIONS
    from repro.iosched.admission import PriorityAdmission
    from repro.workload.traffic import ARRIVALS, class_of_session, make_traffic

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval traffic",
        description="Drive generated open- or closed-loop traffic "
        "through the virtual-clock scheduler and report per-class "
        "latency percentiles; --ablation compares admission policies "
        "at the base rate and at 10x overload.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale in (0, 1] (default: REPRO_SCALE or 0.08)",
    )
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument(
        "--series", type=str, default="A-1", help="Table 1 series (default A-1)"
    )
    parser.add_argument(
        "--sessions", type=int, default=100_000,
        help="number of generated sessions (default 100000)",
    )
    parser.add_argument(
        "--arrival", type=str, default="poisson", choices=ARRIVALS,
        help="arrival process (default poisson)",
    )
    parser.add_argument(
        "--rate", type=float, default=200.0,
        help="mean arrival rate in sessions per virtual second "
        "(default 200; ignored by the closed-loop process)",
    )
    parser.add_argument(
        "--ops-per-session", type=int, default=1,
        help="max operations per session (default 1)",
    )
    parser.add_argument(
        "--think-ms", type=float, default=50.0,
        help="closed-loop think time between operations (default 50)",
    )
    parser.add_argument(
        "--disks", type=int, default=4,
        help="disks behind the buffer pool (default 4)",
    )
    parser.add_argument(
        "--placement", type=str, default="spatial",
        help="declustering placement (default spatial)",
    )
    parser.add_argument(
        "--buffer-pages", type=int, default=512,
        help="shared pool size in page frames (default 512)",
    )
    parser.add_argument(
        "--admission", type=str, default="none", choices=ADMISSIONS,
        help="admission policy ('priority' classifies generated "
        "sessions by their int-/ana- name prefix; default none)",
    )
    parser.add_argument(
        "--ablation", action="store_true",
        help="instead of one run, compare admission none vs priority "
        "at the base --rate and at 10x overload (4 runs)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top-15 cumulative-time "
        "entries",
    )
    parser.add_argument(
        "--profile-out", type=str, default=None, metavar="PATH",
        help="write the raw cProfile pstats dump to PATH (implies --profile)",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the pool metrics snapshot (per-class latency "
        "histograms included) as JSON to PATH",
    )
    args = parser.parse_args(argv)
    if args.sessions < 0:
        parser.error(f"--sessions needs a non-negative count: {args.sessions!r}")
    if args.disks < 1:
        parser.error(f"--disks needs a positive disk count: {args.disks!r}")
    if args.rate <= 0:
        parser.error(f"--rate needs a positive rate: {args.rate!r}")

    if args.scale is not None:
        config = ExperimentConfig(scale=args.scale, seed=args.seed)
    else:
        config = ExperimentConfig(seed=args.seed)
    spec = config.spec(args.series)
    objects = generate_map(spec, seed=config.seed)

    def build_db():
        db = SpatialDatabase(
            smax_bytes=spec.smax_bytes,
            n_disks=args.disks,
            placement=args.placement,
            scheduler="overlap",
        )
        db.build(objects)
        return db

    def make_policy(name):
        if name == "priority":
            # Traffic-tuned bucket: open-loop queueing already refills
            # the default (rate=0.25, burst=60) bucket faster than bulk
            # sessions drain it, so at 10x overload it never engages.
            # A stingier bucket paces analytics past the arrival rush —
            # both classes' p99 improve there, at some makespan cost.
            return PriorityAdmission(
                classifier=class_of_session, rate=0.05, burst_ms=20.0
            )
        if name == "none":
            return None
        return name

    def run_one(db, rate, admission_name):
        traffic = make_traffic(
            objects,
            args.sessions,
            arrival=args.arrival,
            rate_per_s=rate,
            seed=config.seed + 29,
            ops_per_session=args.ops_per_session,
            think_ms=args.think_ms,
        )
        return db.run_traffic(
            traffic,
            buffer_pages=args.buffer_pages,
            admission=make_policy(admission_name),
        )

    print(
        format_header(
            f"traffic — {args.series} (scale={config.scale}), "
            f"{args.sessions} sessions ({args.arrival}), {args.disks} disks "
            f"({args.placement}), {args.buffer_pages}-page pool"
        )
    )
    profile_on = args.profile or args.profile_out is not None
    with _profiled(profile_on, args.profile_out, "traffic"):
        if not args.ablation:
            db = build_db()
            start = time.time()
            report = run_one(db, args.rate, args.admission)
            wall = time.time() - start
            print()
            print(report.format())
            print(f"[traffic: {wall:.1f}s wall]")
            if args.metrics_out is not None:
                db.metrics.write(
                    args.metrics_out,
                    extra={"run": {"arrival": args.arrival,
                                   "sessions": args.sessions,
                                   "makespan_ms": report.makespan_ms}},
                )
                print(f"[traffic: wrote {args.metrics_out}]")
            return 0

        # 10x-overload ablation: admission only matters once the open
        # queues actually build, so compare none vs priority at the
        # base rate and again at 10x.
        rows = []
        for rate in (args.rate, args.rate * 10.0):
            for admission_name in ("none", "priority"):
                db = build_db()
                report = run_one(db, rate, admission_name)
                inter = report.traffic_class("interactive")
                ana = report.traffic_class("analytics")
                rows.append(
                    (
                        f"{rate:g}",
                        admission_name,
                        inter.p50_ms if inter else 0.0,
                        inter.p99_ms if inter else 0.0,
                        ana.p99_ms if ana else 0.0,
                        report.makespan_ms,
                        f"{report.throughput_per_s:.1f}",
                    )
                )
        print()
        print(
            format_table(
                (
                    "rate/s",
                    "admission",
                    "int p50 ms",
                    "int p99 ms",
                    "ana p99 ms",
                    "makespan ms",
                    "sessions/s",
                ),
                rows,
                title="admission under overload (open-loop arrivals)",
            )
        )
    return 0


def tiering_main(argv: list[str]) -> int:
    """The ``tiering`` subcommand: a skewed window workload over the
    tiered page store, ablated across migration policies."""
    import random

    from repro.data.tiger import generate_map
    from repro.database import SpatialDatabase
    from repro.pagestore import MIGRATIONS

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval tiering",
        description="Ablate the tiered page store: static vs "
        "access-driven migration between a small fast tier and the "
        "capacity tier, under a skewed window workload.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale in (0, 1] (default: REPRO_SCALE or 0.08)",
    )
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument(
        "--series", type=str, default="A-1", help="Table 1 series (default A-1)"
    )
    parser.add_argument(
        "--migrations", type=str, default="none,static,promote-on-hit,lru-demote",
        help="comma-separated migration policies ('none' = the flat "
        f"single disk; valid: none, {', '.join(MIGRATIONS)})",
    )
    parser.add_argument(
        "--fast-pages", type=int, default=256,
        help="fast-tier budget in pages (default 256 — deliberately "
        "smaller than the dataset, so placement matters)",
    )
    parser.add_argument(
        "--queries", type=int, default=150,
        help="window queries (default 150)",
    )
    parser.add_argument(
        "--hot-fraction", type=float, default=0.9,
        help="fraction of queries aimed at the hot corner (default 0.9)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the whole ablation under cProfile and print the "
        "top-15 cumulative-time entries",
    )
    parser.add_argument(
        "--profile-out", type=str, default=None, metavar="PATH",
        help="write the raw cProfile pstats dump to PATH (implies --profile)",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="trace each migration policy's query run and write Chrome "
        "trace-event JSON to PATH (suffixed .<migration> when several "
        "policies run)",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write each policy's metrics snapshot as JSON to PATH "
        "(suffixed like --trace-out)",
    )
    args = parser.parse_args(argv)

    migrations = [m.strip() for m in args.migrations.split(",") if m.strip()]
    unknown = [m for m in migrations if m != "none" and m not in MIGRATIONS]
    if unknown:
        parser.error(
            f"unknown migrations: {unknown}; valid: none, {tuple(MIGRATIONS)}"
        )
    if not (0.0 <= args.hot_fraction <= 1.0):
        parser.error(f"--hot-fraction must be in [0, 1]: {args.hot_fraction!r}")
    if args.fast_pages < 1:
        parser.error(f"--fast-pages must be >= 1: {args.fast_pages!r}")

    if args.scale is not None:
        config = ExperimentConfig(scale=args.scale, seed=args.seed)
    else:
        config = ExperimentConfig(seed=args.seed)
    spec = config.spec(args.series)
    objects = generate_map(spec, seed=config.seed)
    bound = max(max(o.mbr.xmax for o in objects), max(o.mbr.ymax for o in objects))
    rng = random.Random(config.seed + 23)
    queries = []
    for i in range(args.queries):
        # Seeded draw: deterministic for a given seed, and exact for
        # any hot fraction (a modulo pattern only works for n/(n+1)).
        if rng.random() < args.hot_fraction:
            x = rng.uniform(0.0, 0.18 * bound)
            y = rng.uniform(0.0, 0.18 * bound)
        else:
            x = rng.uniform(0.0, 0.9 * bound)
            y = rng.uniform(0.0, 0.9 * bound)
        size = 0.08 * bound
        queries.append((x, y, x + size, y + size))

    print(
        format_header(
            f"tiered page store — {args.series} (scale={config.scale}), "
            f"{len(queries)} windows ({args.hot_fraction:.0%} on the hot "
            f"corner), {args.fast_pages}-page fast tier"
        )
    )
    rows = []
    multi = len(migrations) > 1

    def run_one(migration: str) -> None:
        db = SpatialDatabase(
            smax_bytes=spec.smax_bytes,
            tiering=None if migration == "none" else migration,
            fast_pages=args.fast_pages,
        )
        db.build(objects)
        tracer = None
        if args.trace_out is not None:
            from repro.obs import Tracer, register_store_devices, tracing

            tracer = Tracer(label=f"tiering:{migration}")
            register_store_devices(tracer, db.disk)
        mark = db.disk.snapshot()
        if tracer is not None:
            with tracing(tracer):
                with tracer.span("queries", cat="session", args={"migration": migration}):
                    for window in queries:
                        db.window_query(*window)
        else:
            for window in queries:
                db.window_query(*window)
        cost = db.disk.cost_since(mark)
        _export_obs(
            tracer,
            db.metrics,
            _tagged(args.trace_out, migration, multi),
            _tagged(args.metrics_out, migration, multi),
            extra={"run": {"migration": migration, "device_ms": cost.total_ms}},
        )
        rows.append(
            (
                migration,
                cost.total_ms,
                cost.response_ms,
                getattr(db.disk, "promotions", 0),
                getattr(db.disk, "demotions", 0),
                getattr(db.disk, "fast_resident", 0),
            )
        )

    profile_on = args.profile or args.profile_out is not None
    with _profiled(profile_on, args.profile_out, "tiering ablation"):
        for migration in migrations:
            run_one(migration)
    print()
    print(
        format_table(
            (
                "migration",
                "device ms",
                "response ms",
                "promotions",
                "demotions",
                "fast pages",
            ),
            rows,
            title="skewed window workload over the tiered store",
        )
    )
    return 0


def trace_main(argv: list[str]) -> int:
    """The ``trace`` subcommand: run a canonical two-client overlapped
    workload under the span tracer, export the Chrome/Perfetto timeline
    and metrics snapshot, and cross-check span totals against DiskStats."""
    from repro.data.tiger import generate_map
    from repro.database import SpatialDatabase
    from repro.iosched import ADMISSIONS, PREFETCHERS, SCHEDULERS
    from repro.iosched.admission import PriorityAdmission
    from repro.obs import (
        Tracer,
        register_store_devices,
        trace_device_totals,
        tracing,
        validate_chrome_trace,
        write_chrome_trace,
    )
    from repro.workload.streams import mixed_stream

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval trace",
        description="Trace a two-client workload on the virtual clock "
        "and export a Chrome trace-event / Perfetto JSON timeline "
        "(open at https://ui.perfetto.dev) plus a metrics snapshot.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale in (0, 1] (default: REPRO_SCALE or 0.08)",
    )
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument(
        "--series", type=str, default="A-1", help="Table 1 series (default A-1)"
    )
    parser.add_argument(
        "--disks", type=int, default=4,
        help="disks behind the buffer pool (default 4)",
    )
    parser.add_argument(
        "--placement", type=str, default="spatial",
        help="declustering placement (default spatial)",
    )
    parser.add_argument(
        "--scheduler", type=str, default="overlap",
        help="I/O scheduler: overlap (default) or sync",
    )
    parser.add_argument(
        "--prefetch", type=str, default="cluster",
        help="read-ahead policy (default cluster)",
    )
    parser.add_argument(
        "--admission", type=str, default="none",
        help="admission policy on the overlap scheduler (default none; "
        "'priority' marks the beta client as the analytics class)",
    )
    parser.add_argument(
        "--buffer-pages", type=int, default=400,
        help="shared pool size in page frames (default 400)",
    )
    parser.add_argument(
        "--queries", type=int, default=20,
        help="window queries per client (default 20)",
    )
    parser.add_argument(
        "--trace-out", type=str, default="trace.json", metavar="PATH",
        help="Chrome trace-event JSON output path (default trace.json)",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="metrics snapshot JSON output path (default: not written)",
    )
    args = parser.parse_args(argv)

    if args.scheduler not in SCHEDULERS:
        parser.error(f"unknown scheduler '{args.scheduler}'; valid: {SCHEDULERS}")
    if args.prefetch not in PREFETCHERS:
        parser.error(
            f"unknown prefetch policy '{args.prefetch}'; valid: {PREFETCHERS}"
        )
    if args.admission not in ADMISSIONS:
        parser.error(
            f"unknown admission policy '{args.admission}'; valid: {ADMISSIONS}"
        )
    if args.disks < 1:
        parser.error(f"--disks needs a positive disk count: {args.disks!r}")

    if args.scale is not None:
        config = ExperimentConfig(scale=args.scale, seed=args.seed)
    else:
        config = ExperimentConfig(seed=args.seed)
    spec = config.spec(args.series)
    objects = generate_map(spec, seed=config.seed)

    db = SpatialDatabase(
        smax_bytes=spec.smax_bytes,
        n_disks=args.disks,
        placement=args.placement,
        scheduler=args.scheduler,
        prefetch=args.prefetch,
    )
    db.build(objects)
    streams = {
        "alpha": mixed_stream(
            objects, n_windows=args.queries, n_points=args.queries // 2,
            seed=config.seed + 3,
        ),
        "beta": mixed_stream(
            objects, n_windows=args.queries, n_points=args.queries // 2,
            seed=config.seed + 5,
        ),
    }
    policy = args.admission
    if args.admission == "priority":
        policy = PriorityAdmission(classes={"beta": "analytics"})

    print(
        format_header(
            f"span trace — {args.series} (scale={config.scale}), "
            f"{args.disks} disks ({args.placement}), "
            f"{args.scheduler} scheduler, {args.prefetch} prefetch, "
            "2 interleaved clients"
        )
    )
    devices = list(getattr(db.disk, "disks", None) or (db.disk,))
    before = [device.total_ms for device in devices]
    tracer = Tracer(
        label=f"trace:{args.scheduler}.{args.prefetch}.{args.admission}"
    )
    register_store_devices(tracer, db.disk)
    with tracing(tracer):
        report = db.run_sessions(
            streams,
            buffer_pages=args.buffer_pages,
            admission=None if args.admission == "none" else policy,
        )

    data = write_chrome_trace(args.trace_out, tracer)
    counts = validate_chrome_trace(data)
    span_totals = tracer.device_totals()
    json_totals = trace_device_totals(data)
    open_spans = tracer.open_spans()

    rows = []
    worst = 0.0
    for device in devices:
        track = tracer.device_track(device)
        measured = device.total_ms - before[devices.index(device)]
        spanned = span_totals.get(track, 0.0)
        exported = json_totals.get(track, 0.0)
        worst = max(worst, abs(spanned - measured), abs(exported - measured))
        rows.append((track, measured, spanned, exported))
    print()
    print(
        format_table(
            ("device", "DiskStats ms", "span total ms", "exported ms"),
            rows,
            title="per-device span totals vs. device-time accounting",
        )
    )
    rendered = ", ".join(f"{k}:{v}" for k, v in sorted(counts.items()))
    print()
    print(f"trace: {sum(counts.values())} events ({rendered}) -> {args.trace_out}")
    print(
        f"makespan: {report.makespan_ms:.1f} ms virtual, "
        f"hit rate {report.hit_rate:.1%}, "
        f"device {report.total_io.total_ms:.1f} ms"
    )
    if args.metrics_out is not None:
        db.metrics.write(
            args.metrics_out,
            extra={"run": {"scheduler": args.scheduler,
                           "prefetch": args.prefetch,
                           "admission": args.admission,
                           "makespan_ms": report.makespan_ms}},
        )
        print(f"metrics: {len(db.metrics)} metrics -> {args.metrics_out}")
    if open_spans:
        print(f"ERROR: {len(open_spans)} spans left open: {open_spans[:5]}")
        return 1
    if worst > 1e-6:
        print(
            "ERROR: per-device span totals diverge from DiskStats "
            f"accounting by up to {worst:.9f} ms"
        )
        return 1
    print("span totals match DiskStats device time exactly.")
    return 0


def storage_main(argv: list[str]) -> int:
    """The ``storage`` subcommand: cross-validate simulated pricing
    against the real file-backed store, then run the crash-injection
    recovery ablation."""
    import json
    import os
    import random
    import shutil
    import tempfile

    from repro.data.tiger import generate_map
    from repro.database import SpatialDatabase
    from repro.errors import PageCorruptionError
    from repro.pagestore import FaultyPageStore, FilePageStore, SimulatedCrash, flip_byte

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval storage",
        description="Durability check of the file-backed page store: "
        "save a database to a real file, reopen it file-backed, "
        "cross-validate answers and simulated cost against the "
        "in-memory store (reporting measured wall-clock alongside), "
        "then crash an incremental save at sampled write boundaries "
        "and verify recovery lands on the last committed checkpoint.",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="dataset scale in (0, 1] (default 0.02 — the crash matrix "
        "re-saves the file once per sampled boundary)",
    )
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument(
        "--series", type=str, default="A-1", help="Table 1 series (default A-1)"
    )
    parser.add_argument(
        "--queries", type=int, default=40,
        help="window queries for the cross-validation (default 40)",
    )
    parser.add_argument(
        "--path", type=str, default=None, metavar="PATH",
        help="backing file for the page image (default: a temporary "
        "directory, removed afterwards)",
    )
    parser.add_argument(
        "--crash-points", type=int, default=8,
        help="write boundaries sampled per torn/clean variant in the "
        "crash matrix (default 8; boundary 0 and the final superblock "
        "write are always included)",
    )
    parser.add_argument(
        "--report-out", type=str, default=None, metavar="PATH",
        help="write the cross-validation + crash-matrix report as JSON",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the file-backed store's metrics snapshot as JSON "
        "(store.checksum_failures, store.retries, recovery.*)",
    )
    args = parser.parse_args(argv)
    if args.queries < 1:
        parser.error(f"--queries must be >= 1: {args.queries!r}")
    if args.crash_points < 2:
        parser.error(f"--crash-points must be >= 2: {args.crash_points!r}")

    tmpdir = None
    if args.path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-storage-")
        path = os.path.join(tmpdir, "spatial.db")
    else:
        path = args.path

    report: dict = {"series": args.series, "scale": None, "seed": args.seed}
    try:
        config = ExperimentConfig(scale=args.scale, seed=args.seed)
        report["scale"] = config.scale
        spec = config.spec(args.series)
        objects = generate_map(spec, seed=config.seed)
        bound = max(
            max(o.mbr.xmax for o in objects), max(o.mbr.ymax for o in objects)
        )
        rng = random.Random(config.seed + 41)
        windows = []
        for _ in range(args.queries):
            x = rng.uniform(0.0, 0.9 * bound)
            y = rng.uniform(0.0, 0.9 * bound)
            size = 0.1 * bound
            windows.append((x, y, x + size, y + size))

        def answers(db):
            """(sorted oids, simulated ms, wall ms) per window, from a
            cold head each time so both stores price identical runs."""
            out = []
            for window in windows:
                db.disk.invalidate_head()
                t0 = time.perf_counter()
                res = db.window_query(*window)
                wall = (time.perf_counter() - t0) * 1e3
                out.append(
                    (sorted(o.oid for o in res.objects), res.io.total_ms, wall)
                )
            return out

        # -- phase 1: simulated vs file-backed cross-validation ---------
        print(
            format_header(
                f"file-backed page store — {args.series} "
                f"(scale={config.scale}), {len(windows)} windows"
            )
        )
        db = SpatialDatabase(smax_bytes=spec.smax_bytes)
        db.build(objects)
        sim = answers(db)
        db.save(path)
        fdb = SpatialDatabase.open(path, backing="file")
        saved_pages = fdb.disk.mapped_pages
        scrubbed = fdb.disk.scrub()
        measured = answers(fdb)

        mismatched = sum(1 for a, b in zip(sim, measured) if a[0] != b[0])
        drift = max(abs(a[1] - b[1]) for a, b in zip(sim, measured))
        sim_ms = sum(a[1] for a in sim)
        file_ms = sum(b[1] for b in measured)
        wall_ms = sum(b[2] for b in measured)
        rows = [
            ("simulated (in-memory)", f"{sim_ms:.3f}", "-", "-"),
            (
                "file-backed (measured)",
                f"{file_ms:.3f}",
                f"{wall_ms:.3f}",
                f"{wall_ms / file_ms:.4f}" if file_ms else "-",
            ),
        ]
        print()
        print(
            format_table(
                ("store", "simulated ms", "wall-clock ms", "wall/sim"),
                rows,
                title=f"{saved_pages} pages mapped, {scrubbed} scrubbed "
                f"clean, epoch {fdb.disk.epoch}",
            )
        )
        if mismatched:
            print(
                f"ERROR: {mismatched}/{len(windows)} windows answered "
                "differently after the file-backed reopen"
            )
            return 1
        if drift > 1e-9:
            print(
                "ERROR: simulated pricing diverges between the in-memory "
                f"and file-backed stores by up to {drift:.9f} ms"
            )
            return 1
        print(
            "file-backed reopen answers and simulated pricing match the "
            "in-memory store exactly."
        )
        report["cross_validation"] = {
            "windows": len(windows),
            "saved_pages": saved_pages,
            "scrubbed_pages": scrubbed,
            "simulated_ms": sim_ms,
            "wall_clock_ms": wall_ms,
            "answers_match": True,
        }

        # -- phase 2: crash-at-every-boundary recovery ablation ---------
        answers_a = [a[0] for a in sim]
        base_epoch = fdb.disk.epoch
        fdb.close()

        next_oid = max(db.storage.objects) + 1
        ins_rng = random.Random(config.seed + 57)
        for i in range(10):
            x = ins_rng.uniform(0.0, 0.8 * bound)
            y = ins_rng.uniform(0.0, 0.8 * bound)
            db.insert_polyline(
                next_oid + i,
                [(x, y), (x + 0.02 * bound, y + 0.02 * bound)],
                size_bytes=256,
            )
        answers_b = [a[0] for a in answers(db)]

        def save_onto(target, **faults):
            """Incrementally re-save ``db`` onto a copy of the committed
            base image through a fault-injecting store."""
            store = FaultyPageStore(target, metrics=db.metrics, **faults)
            try:
                db.save(target, store=store)
                return store.writes_completed
            finally:
                store.close()

        scratch = path + ".crash"
        shutil.copyfile(path, scratch)
        total_writes = save_onto(scratch)
        points = sorted(
            {
                round(i * (total_writes - 1) / (args.crash_points - 1))
                for i in range(args.crash_points)
            }
        )
        matrix_rows = []
        matrix_report = []
        failures = 0
        for torn in (False, True):
            for n in points:
                shutil.copyfile(path, scratch)
                try:
                    save_onto(scratch, crash_after_writes=n, torn=torn)
                    print(f"ERROR: kill point n={n} torn={torn} never fired")
                    failures += 1
                    continue
                except SimulatedCrash:
                    pass
                probe = FilePageStore(scratch)
                epoch = probe.epoch
                probe.close()
                rdb = SpatialDatabase.open(scratch)
                got = [
                    sorted(o.oid for o in rdb.window_query(*w).objects)
                    for w in windows
                ]
                # The epoch rule: recovery lands on whichever checkpoint
                # was durably committed.  A torn final superblock write
                # can still be logically complete (the payload fits in
                # the surviving half), legitimately committing the new
                # epoch — every other boundary must roll back.
                if epoch == base_epoch:
                    ok, state = got == answers_a, "base"
                elif epoch == base_epoch + 1 and torn and n == total_writes - 1:
                    ok, state = got == answers_b, "new"
                else:
                    ok, state = False, f"epoch {epoch}?"
                failures += not ok
                matrix_rows.append(
                    (n, "torn" if torn else "clean", epoch, state, "ok" if ok else "MISMATCH")
                )
                matrix_report.append(
                    {
                        "crash_after_writes": n,
                        "torn": torn,
                        "recovered_epoch": epoch,
                        "recovered_state": state,
                        "ok": ok,
                    }
                )
        print()
        print(
            format_table(
                ("crash after", "write", "epoch", "recovered", "check"),
                matrix_rows,
                title=f"crash matrix — {total_writes} writes per save, "
                f"base epoch {base_epoch}",
            )
        )

        # -- persistent media corruption must be *detected* -------------
        shutil.copyfile(path, scratch)
        probe = FilePageStore(scratch)
        victim = min(probe._map.values())
        page_size = probe.page_size
        probe.close()
        flip_byte(scratch, victim, page_size)
        try:
            cdb = SpatialDatabase.open(scratch, backing="file")
            try:
                cdb.disk.scrub()
                print("ERROR: scrub missed a persistent bit flip")
                failures += 1
                detected = False
            except PageCorruptionError:
                detected = True
            finally:
                cdb.close()
        except PageCorruptionError:
            detected = True
        if detected:
            print(
                f"persistent bit flip in slot {victim} detected "
                "(PageCorruptionError), zero undetected corruptions."
            )
        report["crash_matrix"] = {
            "writes_per_save": total_writes,
            "base_epoch": base_epoch,
            "points": matrix_report,
            "bit_flip_detected": detected,
            "failures": failures,
        }
        _export_obs(
            None,
            db.metrics,
            None,
            args.metrics_out,
            extra={"storage": report["crash_matrix"]},
        )
        if args.report_out is not None:
            with open(args.report_out, "w") as f:
                json.dump(report, f, indent=2, sort_keys=True)
            print(f"[report -> {args.report_out}]")
        if failures:
            print(f"ERROR: {failures} recovery check(s) failed")
            return 1
        print(
            f"all {len(matrix_rows)} crash points recovered to the last "
            "committed checkpoint."
        )
        return 0
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)


def reorg_main(argv: list[str]) -> int:
    """The ``reorg`` subcommand: clustering-quality recovery and
    foreground interference of paced background reorganization."""
    from repro.data.tiger import generate_map
    from repro.database import SpatialDatabase
    from repro.iosched.admission import PriorityAdmission
    from repro.reorg import Reorganizer, reorg_traffic
    from repro.workload.traffic import class_of_session, make_traffic

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval reorg",
        description="Degrade a cluster database with online deletes, "
        "then run identical foreground traffic without and with paced "
        "background reorganization; report quality recovery and "
        "foreground p95 interference.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale in (0, 1] (default: REPRO_SCALE or 0.08)",
    )
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument(
        "--series", type=str, default="A-1", help="Table 1 series (default A-1)"
    )
    parser.add_argument(
        "--sessions", type=int, default=2000,
        help="foreground sessions (default 2000)",
    )
    parser.add_argument(
        "--rate", type=float, default=200.0,
        help="mean arrival rate in sessions per virtual second (default 200)",
    )
    parser.add_argument(
        "--disks", type=int, default=4,
        help="disks behind the buffer pool (default 4)",
    )
    parser.add_argument(
        "--buffer-pages", type=int, default=512,
        help="shared pool size in page frames (default 512)",
    )
    parser.add_argument(
        "--delete-fraction", type=float, default=0.5,
        help="fraction of objects deleted to degrade clustering "
        "(default 0.5)",
    )
    parser.add_argument(
        "--budget-pages", type=int, default=64,
        help="pages one reorganization round may move (default 64)",
    )
    parser.add_argument(
        "--rounds", type=int, default=40,
        help="reorganization rounds spread over the traffic (default 40)",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the with-reorg run's metrics snapshot as JSON "
        "(reorg.moved_pages, reorg.runs, write.* included)",
    )
    args = parser.parse_args(argv)
    if args.sessions < 1:
        parser.error(f"--sessions must be >= 1: {args.sessions!r}")
    if args.disks < 1:
        parser.error(f"--disks needs a positive disk count: {args.disks!r}")
    if not (0.0 < args.delete_fraction < 1.0):
        parser.error(
            f"--delete-fraction must be in (0, 1): {args.delete_fraction!r}"
        )

    if args.scale is not None:
        config = ExperimentConfig(scale=args.scale, seed=args.seed)
    else:
        config = ExperimentConfig(seed=args.seed)
    spec = config.spec(args.series)
    objects = generate_map(spec, seed=config.seed)
    stride = max(2, round(1.0 / args.delete_fraction))
    doomed = [o.oid for i, o in enumerate(objects) if i % stride == 0]
    survivors = [o for i, o in enumerate(objects) if i % stride != 0]

    def run_one(with_reorg: bool):
        db = SpatialDatabase(
            smax_bytes=spec.smax_bytes,
            n_disks=args.disks,
            scheduler="overlap",
        )
        db.build(objects)
        for oid in doomed:
            db.delete(oid)
        reorg = Reorganizer(db, budget_pages=args.budget_pages)
        degraded = reorg.quality()
        traffic = make_traffic(
            survivors,
            args.sessions,
            rate_per_s=args.rate,
            seed=config.seed + 29,
        )
        sessions = list(traffic)
        if with_reorg:
            span = max(s.arrival_ms for s in traffic)
            sessions += reorg_traffic(
                reorg,
                rounds=args.rounds,
                period_ms=max(span / max(args.rounds, 1), 1.0),
            )
        report = db.run_traffic(
            sessions,
            buffer_pages=args.buffer_pages,
            admission=PriorityAdmission(classifier=class_of_session),
        )
        return db, reorg, report, degraded, reorg.quality()

    print(
        format_header(
            f"background reorganization — {args.series} "
            f"(scale={config.scale}), {args.sessions} sessions, "
            f"{args.disks} disks, {args.delete_fraction:.0%} deleted, "
            f"{args.rounds} rounds x {args.budget_pages} pages"
        )
    )
    rows = []
    baseline_p95 = None
    for with_reorg in (False, True):
        db, reorg, report, degraded, after = run_one(with_reorg)
        inter = report.traffic_class("interactive")
        p95 = inter.p95_ms if inter else 0.0
        if baseline_p95 is None:
            baseline_p95 = p95
        rows.append(
            (
                "with reorg" if with_reorg else "no reorg",
                f"{degraded:.3f}",
                f"{after:.3f}",
                reorg.moved_pages,
                reorg.runs,
                p95,
                f"{p95 / baseline_p95:.2f}x" if baseline_p95 else "1.00x",
            )
        )
        if with_reorg:
            recovered = after - degraded
            gap = 1.0 - degraded
            ratio = p95 / baseline_p95 if baseline_p95 else 1.0
            print()
            print(
                f"quality recovered {recovered:.3f} of a {gap:.3f} gap "
                f"({recovered / gap:.0%}) while foreground p95 stayed at "
                f"{ratio:.2f}x the no-reorg baseline"
                if gap > 0
                else "no degradation to recover"
            )
            if args.metrics_out is not None:
                db.metrics.write(
                    args.metrics_out,
                    extra={"run": {"moved_pages": reorg.moved_pages,
                                   "runs": reorg.runs,
                                   "quality_before": degraded,
                                   "quality_after": after,
                                   "interactive_p95_ms": p95}},
                )
                print(f"[metrics -> {args.metrics_out}]")
    print()
    print(
        format_table(
            (
                "run",
                "quality degraded",
                "quality after",
                "moved pages",
                "rounds",
                "int p95 ms",
                "p95 vs base",
            ),
            rows,
            title="paced reorganization vs. foreground traffic",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "workload":
        return workload_main(argv[1:])
    if argv and argv[0] == "pagestore":
        return pagestore_main(argv[1:])
    if argv and argv[0] == "iosched":
        return iosched_main(argv[1:])
    if argv and argv[0] == "traffic":
        return traffic_main(argv[1:])
    if argv and argv[0] == "tiering":
        return tiering_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "storage":
        return storage_main(argv[1:])
    if argv and argv[0] == "reorg":
        return reorg_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench import main as bench_main

        return bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale in (0, 1] (default: REPRO_SCALE or 0.08)",
    )
    parser.add_argument(
        "--seed", type=int, default=1994, help="dataset seed (default 1994)"
    )
    parser.add_argument(
        "--only",
        type=str,
        default=None,
        help="comma-separated experiment names "
        f"(valid: {', '.join(EXPERIMENTS)})",
    )
    args = parser.parse_args(argv)

    if args.scale is not None:
        config = ExperimentConfig(scale=args.scale, seed=args.seed)
    else:
        config = ExperimentConfig(seed=args.seed)
    ctx = ExperimentContext(config)

    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiments: {unknown}")
    else:
        names = list(EXPERIMENTS)

    print(
        format_header(
            "Brinkhoff & Kriegel, VLDB 1994 — reproduction "
            f"(scale={config.scale}, seed={config.seed})"
        )
    )
    for name in names:
        start = time.time()
        table = EXPERIMENTS[name](ctx)
        print()
        print(table)
        print(f"[{name}: {time.time() - start:.1f}s wall]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
