"""Point-query experiment (Figure 12).

678 point queries at the centers of the Section 5.4 windows, against
all three organization models on the map-1 series.  Expected shape:
secondary and cluster organization are nearly identical; the primary
organization is best for the smallest objects (A-1: the object comes
for free with its data page) and worst for the largest (C-1: objects
that do not fit a data page cost an extra access).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.context import ORG_NAMES, ExperimentContext
from repro.eval.metrics import WorkloadAggregate, run_point_queries
from repro.eval.report import format_table

__all__ = ["PointRow", "run_fig12_points", "format_fig12"]


@dataclass(slots=True)
class PointRow:
    series: str
    per_org: dict[str, WorkloadAggregate]

    @property
    def cluster_vs_secondary(self) -> float:
        """Ratio of the cluster to the secondary organization's cost —
        the paper reports "almost no difference", i.e. ~1.0."""
        sec = self.per_org["secondary"].ms_per_4kb
        clu = self.per_org["cluster"].ms_per_4kb
        return clu / sec if sec > 0 else float("inf")


def run_fig12_points(
    ctx: ExperimentContext,
    series: tuple[str, ...] = ("A-1", "B-1", "C-1"),
) -> list[PointRow]:
    rows: list[PointRow] = []
    for key in series:
        points = ctx.points(key)
        per_org = {
            name: run_point_queries(ctx.org(name, key), points)
            for name in ORG_NAMES
        }
        rows.append(PointRow(key, per_org))
    return rows


def format_fig12(rows: list[PointRow]) -> str:
    return format_table(
        ["series", "sec (ms/4KB)", "prim (ms/4KB)", "cluster (ms/4KB)",
         "cluster/sec"],
        [
            (
                r.series,
                r.per_org["secondary"].ms_per_4kb,
                r.per_org["primary"].ms_per_4kb,
                r.per_org["cluster"].ms_per_4kb,
                r.cluster_vs_secondary,
            )
            for r in rows
        ],
        title="Figure 12 — point queries across organization models",
    )
