"""Plain-text report formatting for the experiment harness.

Every figure driver produces rows of (label, value...) data; these
helpers turn them into the aligned tables printed by the benchmark
suite and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_header"]


def format_header(title: str, width: int = 72) -> str:
    """A boxed section header."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def format_table(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are shown with two decimals; everything else via ``str``.
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:,.2f}"
        return str(value)

    rendered = [[fmt(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(columns)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
