"""Evaluation harness: one driver per table/figure of the paper."""

from repro.eval.adaptation import (
    AdaptationResult,
    format_fig11,
    run_fig11_adaptation,
)
from repro.eval.config import PAPER_JOIN_BUFFERS, ExperimentConfig
from repro.eval.construction import (
    format_fig5,
    format_fig6,
    format_fig7,
    run_fig5_construction,
    run_fig6_storage,
    run_fig7_buddy,
)
from repro.eval.context import ORG_NAMES, ExperimentContext
from repro.eval.joins import (
    format_fig14,
    format_fig16,
    format_fig17,
    run_fig14_join_orgs,
    run_fig16_join_techniques,
    run_fig17_complete_join,
)
from repro.eval.metrics import (
    WorkloadAggregate,
    run_point_queries,
    run_window_queries,
)
from repro.eval.point import format_fig12, run_fig12_points
from repro.eval.report import format_header, format_table
from repro.eval.table1 import format_table1, run_table1
from repro.eval.window import (
    format_fig8,
    format_fig10,
    run_fig8_windows,
    run_fig10_techniques,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "ORG_NAMES",
    "PAPER_JOIN_BUFFERS",
    "WorkloadAggregate",
    "run_window_queries",
    "run_point_queries",
    "run_table1",
    "format_table1",
    "run_fig5_construction",
    "format_fig5",
    "run_fig6_storage",
    "format_fig6",
    "run_fig7_buddy",
    "format_fig7",
    "run_fig8_windows",
    "format_fig8",
    "run_fig10_techniques",
    "format_fig10",
    "run_fig11_adaptation",
    "format_fig11",
    "run_fig12_points",
    "format_fig12",
    "run_fig14_join_orgs",
    "format_fig14",
    "run_fig16_join_techniques",
    "format_fig16",
    "run_fig17_complete_join",
    "format_fig17",
    "format_table",
    "format_header",
]
