"""Spatial-join experiments (Figures 14, 16 and 17).

* **Figure 14** — organization models joined over C-1 ⋈ C-2, versions
  *a* (≈0.65 intersections per MBR) and *b* (≈9), for buffer sizes
  from 200 to 6400 pages.  Expected shape: the cluster organization
  wins clearly (paper: up to 4.9×/4.6× for *a*, 9.5×/6.2× for *b*).
* **Figure 16** — the cluster organization's transfer techniques
  (complete / vector read / read / optimum).  Expected shape: the SLM
  ``read`` beats ``vector``; ``complete`` wins except for small
  buffers; from ~1600 pages everything approaches the optimum.
* **Figure 17** — the complete three-step intersection join (MBR join,
  object transfer, exact geometry test at 0.75 ms per candidate pair):
  global clustering slashes the transfer share; total speed-up ≈4×.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.context import ORG_NAMES, ExperimentContext
from repro.eval.report import format_table
from repro.join.multistep import JoinResult, spatial_join

__all__ = [
    "JoinOrgRow",
    "run_fig14_join_orgs",
    "format_fig14",
    "JoinTechniqueRow",
    "run_fig16_join_techniques",
    "format_fig16",
    "CompleteJoinRow",
    "run_fig17_complete_join",
    "format_fig17",
]

FIG16_TECHNIQUES = ("complete", "vector", "read", "optimum")


@dataclass(slots=True)
class JoinOrgRow:
    version: str
    buffer_pages: int
    per_org: dict[str, JoinResult]

    @property
    def speedup_vs_secondary(self) -> float:
        clu = self.per_org["cluster"].io_ms
        return self.per_org["secondary"].io_ms / clu if clu > 0 else float("inf")

    @property
    def speedup_vs_primary(self) -> float:
        clu = self.per_org["cluster"].io_ms
        return self.per_org["primary"].io_ms / clu if clu > 0 else float("inf")


def run_fig14_join_orgs(
    ctx: ExperimentContext,
    series_r: str = "C-1",
    series_s: str = "C-2",
    versions: tuple[str, ...] = ("a", "b"),
    buffers: list[int] | None = None,
) -> list[JoinOrgRow]:
    buffers = buffers if buffers is not None else ctx.config.join_buffers
    rows: list[JoinOrgRow] = []
    for version in versions:
        for buffer_pages in buffers:
            per_org: dict[str, JoinResult] = {}
            for name in ORG_NAMES:
                org_r, org_s = ctx.join_pair(name, series_r, series_s, version)
                per_org[name] = spatial_join(org_r, org_s, buffer_pages)
            rows.append(JoinOrgRow(version, buffer_pages, per_org))
    return rows


def format_fig14(rows: list[JoinOrgRow]) -> str:
    return format_table(
        ["version", "buffer", "sec (s)", "prim (s)", "cluster (s)",
         "speedup vs sec", "speedup vs prim", "MBR pairs"],
        [
            (
                r.version,
                r.buffer_pages,
                r.per_org["secondary"].io_s,
                r.per_org["primary"].io_s,
                r.per_org["cluster"].io_s,
                r.speedup_vs_secondary,
                r.speedup_vs_primary,
                r.per_org["cluster"].candidate_pairs,
            )
            for r in rows
        ],
        title="Figure 14 — spatial join I/O across organization models",
    )


@dataclass(slots=True)
class JoinTechniqueRow:
    version: str
    buffer_pages: int
    per_technique: dict[str, JoinResult]


def run_fig16_join_techniques(
    ctx: ExperimentContext,
    series_r: str = "C-1",
    series_s: str = "C-2",
    versions: tuple[str, ...] = ("a", "b"),
    buffers: list[int] | None = None,
    techniques: tuple[str, ...] = FIG16_TECHNIQUES,
) -> list[JoinTechniqueRow]:
    # The complete/read/vector trade-off hinges on the buffer-to-unit
    # ratio, and cluster units keep their paper size (Smax pages) at any
    # data scale — so this figure uses the paper's *absolute* buffer
    # sizes, unlike Figure 14 whose buffers scale with the data.
    from repro.eval.config import PAPER_JOIN_BUFFERS

    buffers = buffers if buffers is not None else list(PAPER_JOIN_BUFFERS)
    rows: list[JoinTechniqueRow] = []
    for version in versions:
        org_r, org_s = ctx.join_pair("cluster", series_r, series_s, version)
        for buffer_pages in buffers:
            per_technique = {
                technique: spatial_join(
                    org_r, org_s, buffer_pages, technique=technique
                )
                for technique in techniques
            }
            rows.append(JoinTechniqueRow(version, buffer_pages, per_technique))
    return rows


def format_fig16(rows: list[JoinTechniqueRow]) -> str:
    techniques = list(rows[0].per_technique) if rows else []
    return format_table(
        ["version", "buffer"] + [f"{t} (s)" for t in techniques],
        [
            [r.version, r.buffer_pages]
            + [r.per_technique[t].io_s for t in techniques]
            for r in rows
        ],
        title="Figure 16 — join transfer techniques (cluster org)",
    )


@dataclass(slots=True)
class CompleteJoinRow:
    version: str
    organization: str
    mbr_join_s: float
    transfer_s: float
    exact_s: float

    @property
    def total_s(self) -> float:
        return self.mbr_join_s + self.transfer_s + self.exact_s


def run_fig17_complete_join(
    ctx: ExperimentContext,
    series_r: str = "C-1",
    series_s: str = "C-2",
    versions: tuple[str, ...] = ("a", "b"),
    buffer_pages: int = 1600,
) -> list[CompleteJoinRow]:
    # Absolute paper buffer (see run_fig16_join_techniques on why).
    rows: list[CompleteJoinRow] = []
    for version in versions:
        for name in ("secondary", "cluster"):
            org_r, org_s = ctx.join_pair(name, series_r, series_s, version)
            result = spatial_join(org_r, org_s, buffer_pages)
            rows.append(
                CompleteJoinRow(
                    version=version,
                    organization=name,
                    mbr_join_s=result.mbr_io.total_s,
                    transfer_s=result.transfer_io.total_s,
                    exact_s=result.exact_ms / 1000.0,
                )
            )
    return rows


def format_fig17(rows: list[CompleteJoinRow]) -> str:
    lines = [
        format_table(
            ["version", "organization", "MBR-join (s)", "obj transfer (s)",
             "exact test (s)", "total (s)"],
            [
                (r.version, r.organization, r.mbr_join_s, r.transfer_s,
                 r.exact_s, r.total_s)
                for r in rows
            ],
            title="Figure 17 — complete intersection join cost breakdown",
        )
    ]
    by_version: dict[str, dict[str, CompleteJoinRow]] = {}
    for row in rows:
        by_version.setdefault(row.version, {})[row.organization] = row
    for version, orgs in by_version.items():
        if "secondary" in orgs and "cluster" in orgs:
            speedup = orgs["secondary"].total_s / orgs["cluster"].total_s
            lines.append(
                f"version {version}: complete-join speedup "
                f"{speedup:.1f}x (paper: 3.9x for a, 4.3x for b)"
            )
    return "\n".join(lines)
