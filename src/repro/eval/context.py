"""Shared experiment state: generated maps, built organizations, joins.

Building an organization over a map is by far the most expensive step
of the harness, and several figures reuse the same builds (Figures 5
and 6 report construction cost and utilization of the *same* trees;
Figures 8, 10 and 12 query them).  The context memoises everything by
configuration key, so a full benchmark run builds each organization at
most once.
"""

from __future__ import annotations

from repro.core.organization import ClusterOrganization
from repro.core.policy import ClusterPolicy
from repro.data.calibrate import (
    PAIRS_PER_OBJECT_VERSION_B,
    calibrate_expansion,
)
from repro.data.tiger import generate_map
from repro.data.workload import point_workload, window_workload
from repro.disk.allocator import PageAllocator
from repro.disk.model import DiskModel
from repro.errors import ConfigurationError
from repro.eval.config import ExperimentConfig
from repro.geometry.feature import SpatialObject
from repro.geometry.rect import Rect
from repro.storage.base import SpatialOrganization
from repro.storage.primary import PrimaryOrganization
from repro.storage.secondary import SecondaryOrganization

__all__ = ["ExperimentContext", "ORG_NAMES"]

ORG_NAMES = ("secondary", "primary", "cluster")

_ORG_CLASSES = {
    "secondary": SecondaryOrganization,
    "primary": PrimaryOrganization,
    "cluster": ClusterOrganization,
}


class ExperimentContext:
    """Memoising factory for maps, workloads and built organizations."""

    def __init__(self, config: ExperimentConfig | None = None):
        self.config = config or ExperimentConfig()
        self._maps: dict[tuple, list[SpatialObject]] = {}
        self._orgs: dict[tuple, SpatialOrganization] = {}
        self._join_pairs: dict[tuple, tuple[SpatialOrganization, SpatialOrganization]] = {}
        self._windows: dict[tuple, list[Rect]] = {}
        self._expansions: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def objects(self, series_key: str, mbr_expansion: float | None = None) -> list[SpatialObject]:
        """The (scaled) synthetic map of one Table 1 series.

        Expanded-MBR variants (join version *b*) share the natural map's
        geometry — only the spatial keys differ, exactly as Section 6.1
        derives its versions "by using MBRs with different extensions".
        """
        cache_key = (series_key, mbr_expansion)
        cached = self._maps.get(cache_key)
        if cached is None:
            if mbr_expansion is not None:
                base = self.objects(series_key)
                cached = [
                    SpatialObject(
                        o.oid,
                        o.geometry,
                        size_bytes=o.size_bytes,
                        mbr_override=o.geometry.mbr.expanded(mbr_expansion),
                    )
                    for o in base
                ]
            else:
                spec = self.config.spec(series_key)
                # Map 2 ids continue after map 1 so joined relations
                # never share object identifiers.
                id_offset = 0 if spec.map_id == 1 else 10_000_000
                cached = generate_map(
                    spec, seed=self.config.seed, id_offset=id_offset
                )
            self._maps[cache_key] = cached
        return cached

    def version_expansion(self, series_r: str, series_s: str, version: str) -> float | None:
        """MBR expansion for a join version: *a* uses natural MBRs,
        *b* is calibrated to ~9 intersections per MBR (Section 6.1)."""
        if version == "a":
            return None
        if version != "b":
            raise ConfigurationError(f"join version must be 'a' or 'b', got {version!r}")
        key = (series_r, series_s)
        factor = self._expansions.get(key)
        if factor is None:
            factor = calibrate_expansion(
                self.objects(series_r),
                self.objects(series_s),
                PAIRS_PER_OBJECT_VERSION_B,
            )
            self._expansions[key] = factor
        return factor

    # ------------------------------------------------------------------
    # workloads
    # ------------------------------------------------------------------
    def windows(self, series_key: str, area_fraction: float) -> list[Rect]:
        key = (series_key, area_fraction)
        cached = self._windows.get(key)
        if cached is None:
            cached = window_workload(
                self.objects(series_key),
                area_fraction,
                n_queries=self.config.n_queries,
                seed=self.config.seed + 17,
            )
            self._windows[key] = cached
        return cached

    def points(self, series_key: str, area_fraction: float = 1e-4) -> list[tuple[float, float]]:
        return point_workload(self.windows(series_key, area_fraction))

    # ------------------------------------------------------------------
    # organizations
    # ------------------------------------------------------------------
    def _make_org(
        self,
        org_name: str,
        series_key: str,
        disk: DiskModel,
        allocator: PageAllocator,
        region_prefix: str,
        buddy_sizes: int | None,
        smax_bytes: int | None,
    ) -> SpatialOrganization:
        spec = self.config.spec(series_key)
        cls = _ORG_CLASSES.get(org_name)
        if cls is None:
            raise ConfigurationError(
                f"unknown organization '{org_name}'; valid: {ORG_NAMES}"
            )
        kwargs = dict(
            disk=disk,
            allocator=allocator,
            region_prefix=region_prefix,
            construction_buffer_pages=self.config.construction_buffer_pages,
        )
        if cls is ClusterOrganization:
            kwargs["policy"] = ClusterPolicy(
                smax_bytes or spec.smax_bytes, buddy_sizes=buddy_sizes
            )
        return cls(**kwargs)

    def org(
        self,
        org_name: str,
        series_key: str,
        buddy_sizes: int | None = None,
        smax_bytes: int | None = None,
    ) -> SpatialOrganization:
        """A built (memoised) organization over one series' map."""
        key = (org_name, series_key, buddy_sizes, smax_bytes)
        cached = self._orgs.get(key)
        if cached is None:
            cached = self._make_org(
                org_name,
                series_key,
                DiskModel(),
                PageAllocator(),
                f"{org_name}.{series_key}",
                buddy_sizes,
                smax_bytes,
            )
            cached.build(self.objects(series_key))
            self._orgs[key] = cached
        return cached

    def join_pair(
        self,
        org_name: str,
        series_r: str,
        series_s: str,
        version: str = "a",
    ) -> tuple[SpatialOrganization, SpatialOrganization]:
        """Two built organizations sharing one disk — the join setup of
        Section 6.1 (memoised per organization and version)."""
        key = (org_name, series_r, series_s, version)
        cached = self._join_pairs.get(key)
        if cached is None:
            expansion = self.version_expansion(series_r, series_s, version)
            disk = DiskModel()
            allocator = PageAllocator()
            org_r = self._make_org(
                org_name, series_r, disk, allocator, f"r.{org_name}", None, None
            )
            org_s = self._make_org(
                org_name, series_s, disk, allocator, f"s.{org_name}", None, None
            )
            org_r.build(self.objects(series_r, expansion))
            org_s.build(self.objects(series_s, expansion))
            cached = (org_r, org_s)
            self._join_pairs[key] = cached
        return cached
