"""Multi-disk declustering of cluster units — the paper's future work.

Section 7 closes with: "The design of a parallel cluster organization is
the next challenge … multi-disk systems should be investigated in order
to organize the high data volume of spatial applications more
efficiently."  This module implements that extension on top of the
cluster organization.

Since the :mod:`repro.pagestore` subsystem, the reader is a thin
adapter: the disk bank, the unit→disk routing and the parallel pricing
(max-over-disks response time, sum-of-device-time totals) all live in
:class:`~repro.pagestore.store.ShardedPageStore`; the reader only
contributes the *assignment* of cluster units to disks:

* ``round_robin`` — units are dealt to the disks in creation order (a
  proxy for random placement);
* ``spatial`` — units sorted by their region's x-center, dealt
  round-robin, which guarantees that spatially adjacent units — exactly
  the ones a window query co-accesses — land on different disks.

For the *dynamic* variant — a live database whose whole page traffic
(all organizations, the R*-tree pager, the spatial join) runs
declustered — use ``SpatialDatabase(n_disks=..., placement=...)``,
which prices every placement-policy decision in the page store itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.organization import ClusterOrganization
from repro.core.unit import ClusterUnit
from repro.errors import ConfigurationError
from repro.geometry.rect import Rect
from repro.pagestore.store import ShardedPageStore, VectoredCost

__all__ = ["DECLUSTERING_POLICIES", "ParallelClusterReader", "ParallelQueryCost"]

DECLUSTERING_POLICIES = ("round_robin", "spatial")


@dataclass(slots=True)
class ParallelQueryCost(VectoredCost):
    """Cost of one window query on the declustered organization (a
    :class:`~repro.pagestore.store.VectoredCost` plus the number of
    cluster units transferred)."""

    units_read: int = 0


class ParallelClusterReader:
    """Window queries over cluster units declustered onto ``n_disks``.

    The reader leaves the underlying organization untouched — it builds
    its own unit→disk assignment and prices unit transfers on a private
    :class:`~repro.pagestore.store.ShardedPageStore`, so the same
    organization can be examined under several disk counts and
    policies.

    Parameters
    ----------
    org:
        A built cluster organization.
    n_disks:
        Number of independent disks.
    policy:
        ``"round_robin"`` or ``"spatial"`` (see module docstring).
    """

    def __init__(
        self,
        org: ClusterOrganization,
        n_disks: int,
        policy: str = "spatial",
    ):
        if policy not in DECLUSTERING_POLICIES:
            raise ConfigurationError(
                f"unknown policy '{policy}'; valid: {DECLUSTERING_POLICIES}"
            )
        self.org = org
        self.n_disks = n_disks
        self.policy = policy
        # Placement is fully explicit (every unit extent is pinned by
        # the deal below), so the store's own default rule never fires.
        self.store = ShardedPageStore(
            n_disks, placement="round_robin", params=org.disk.params
        )
        self.assignment = self._assign()

    @property
    def disks(self):
        """The underlying disk bank (one cost model per device)."""
        return self.store.disks

    # ------------------------------------------------------------------
    def _assign(self) -> dict[int, int]:
        """unit extent start -> disk index (extents pinned in the
        store along the way)."""
        pairs: list[tuple[ClusterUnit, Rect]] = []
        for leaf in self.org.tree.leaves():
            unit = leaf.tag
            if unit is not None and leaf.entries:
                pairs.append((unit, leaf.mbr()))
        if self.policy == "spatial":
            pairs.sort(key=lambda ur: ur[1].center()[0])
        assignment: dict[int, int] = {}
        for i, (unit, _region) in enumerate(pairs):
            disk = i % self.n_disks
            assignment[unit.extent.start] = disk
            self.store.place_extent(unit.extent, disk=disk)
        return assignment

    def disk_of(self, unit: ClusterUnit) -> int:
        """The disk index a unit was declustered to."""
        return self.assignment[unit.extent.start]

    # ------------------------------------------------------------------
    def window_query_cost(self, window: Rect) -> ParallelQueryCost:
        """Price a window query that reads every matching cluster unit
        completely, in parallel across the disks.

        Only the object transfer is priced (the R*-tree filter is the
        same for any disk count and, as in the paper's measurement mode,
        the directory is memory-resident).
        """
        groups = self.org.tree.window_leaves(window)
        snapshot = self.store.snapshot()
        units_read = 0
        for leaf, entries in groups:
            unit: ClusterUnit | None = leaf.tag
            if unit is None or not entries:
                continue
            used = min(unit.used_pages, unit.extent.npages)
            if used == 0:
                continue
            self.store.read(unit.extent.start, used)
            units_read += 1
        cost = self.store.cost_since(snapshot)
        return ParallelQueryCost(
            response_ms=cost.response_ms,
            total_ms=cost.total_ms,
            per_disk_ms=cost.per_disk_ms,
            units_read=units_read,
        )

    def workload_response_ms(self, windows: list[Rect]) -> float:
        """Summed parallel response time of a whole workload."""
        return sum(self.window_query_cost(w).response_ms for w in windows)
