"""Multi-disk declustering of cluster units — the paper's future work.

Section 7 closes with: "The design of a parallel cluster organization is
the next challenge … multi-disk systems should be investigated in order
to organize the high data volume of spatial applications more
efficiently."  This module implements that extension on top of the
cluster organization:

* every cluster unit is assigned to one of ``n_disks`` independent
  disks (each with its own head and cost accounting);
* a window query reads the units it touches **in parallel** — its
  response time is the *maximum* per-disk time, while the total device
  time stays the sum;
* two declustering policies are provided: ``round_robin`` over unit
  creation order (a proxy for random placement) and ``spatial``
  (units sorted by their region's x-center, dealt round-robin), which
  guarantees that spatially adjacent units — exactly the ones a window
  query co-accesses — land on different disks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.organization import ClusterOrganization
from repro.core.unit import ClusterUnit
from repro.disk.model import DiskModel
from repro.errors import ConfigurationError
from repro.geometry.rect import Rect

__all__ = ["DECLUSTERING_POLICIES", "ParallelClusterReader", "ParallelQueryCost"]

DECLUSTERING_POLICIES = ("round_robin", "spatial")


@dataclass(slots=True)
class ParallelQueryCost:
    """Cost of one window query on the declustered organization."""

    response_ms: float  # parallel response time: max over the disks
    total_ms: float  # total device time: sum over the disks
    per_disk_ms: list[float] = field(default_factory=list)
    units_read: int = 0

    @property
    def parallelism(self) -> float:
        """Achieved parallel speed-up: total work / response time."""
        if self.response_ms <= 0:
            return 1.0
        return self.total_ms / self.response_ms


class ParallelClusterReader:
    """Window queries over cluster units declustered onto ``n_disks``.

    The reader leaves the underlying organization untouched — it builds
    its own unit→disk assignment and prices unit transfers on a private
    bank of disks, so the same organization can be examined under
    several disk counts and policies.

    Parameters
    ----------
    org:
        A built cluster organization.
    n_disks:
        Number of independent disks.
    policy:
        ``"round_robin"`` or ``"spatial"`` (see module docstring).
    """

    def __init__(
        self,
        org: ClusterOrganization,
        n_disks: int,
        policy: str = "spatial",
    ):
        if n_disks < 1:
            raise ConfigurationError(f"need at least one disk, got {n_disks}")
        if policy not in DECLUSTERING_POLICIES:
            raise ConfigurationError(
                f"unknown policy '{policy}'; valid: {DECLUSTERING_POLICIES}"
            )
        self.org = org
        self.n_disks = n_disks
        self.policy = policy
        self.disks = [DiskModel(org.disk.params) for _ in range(n_disks)]
        self.assignment = self._assign()

    # ------------------------------------------------------------------
    def _assign(self) -> dict[int, int]:
        """unit extent start -> disk index."""
        pairs: list[tuple[ClusterUnit, Rect]] = []
        for leaf in self.org.tree.leaves():
            unit = leaf.tag
            if unit is not None and leaf.entries:
                pairs.append((unit, leaf.mbr()))
        if self.policy == "spatial":
            pairs.sort(key=lambda ur: ur[1].center()[0])
        assignment: dict[int, int] = {}
        for i, (unit, _region) in enumerate(pairs):
            assignment[unit.extent.start] = i % self.n_disks
        return assignment

    def disk_of(self, unit: ClusterUnit) -> int:
        """The disk index a unit was declustered to."""
        return self.assignment[unit.extent.start]

    # ------------------------------------------------------------------
    def window_query_cost(self, window: Rect) -> ParallelQueryCost:
        """Price a window query that reads every matching cluster unit
        completely, in parallel across the disks.

        Only the object transfer is priced (the R*-tree filter is the
        same for any disk count and, as in the paper's measurement mode,
        the directory is memory-resident).
        """
        groups = self.org.tree.window_leaves(window)
        per_disk = [0.0] * self.n_disks
        units_read = 0
        for leaf, entries in groups:
            unit: ClusterUnit | None = leaf.tag
            if unit is None or not entries:
                continue
            used = min(unit.used_pages, unit.extent.npages)
            if used == 0:
                continue
            disk_index = self.disk_of(unit)
            per_disk[disk_index] += self.disks[disk_index].read(
                unit.extent.start, used
            )
            units_read += 1
        return ParallelQueryCost(
            response_ms=max(per_disk) if per_disk else 0.0,
            total_ms=sum(per_disk),
            per_disk_ms=per_disk,
            units_read=units_read,
        )

    def workload_response_ms(self, windows: list[Rect]) -> float:
        """Summed parallel response time of a whole workload."""
        return sum(self.window_query_cost(w).response_ms for w in windows)
