"""Parallel (multi-disk) cluster organization — the Section 7 outlook."""

from repro.parallel.decluster import (
    DECLUSTERING_POLICIES,
    ParallelClusterReader,
    ParallelQueryCost,
)

__all__ = [
    "ParallelClusterReader",
    "ParallelQueryCost",
    "DECLUSTERING_POLICIES",
]
