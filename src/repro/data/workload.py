"""Query workloads (Sections 5.4 and 5.5).

The paper runs 678 window queries per window size; window areas range
from 0.001 % to 10 % of the data space, and "the distribution of the
query windows followed the distribution of the MBRs in such a way that
each window center was contained in the MBR of a stored object".  Point
queries reuse the window centers (Section 5.5).
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import DEFAULT_DATA_SPACE
from repro.errors import ConfigurationError
from repro.geometry.feature import SpatialObject
from repro.geometry.rect import Rect

__all__ = ["PAPER_WINDOW_AREAS", "window_workload", "point_workload"]

PAPER_WINDOW_AREAS: tuple[float, ...] = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)
"""Window areas as fractions of the data space: 0.001 % … 10 %."""


def window_workload(
    objects: list[SpatialObject],
    area_fraction: float,
    n_queries: int = 678,
    seed: int = 715,
    data_space: float = DEFAULT_DATA_SPACE,
) -> list[Rect]:
    """Square query windows whose centers follow the MBR distribution.

    Each center is a uniform point inside the MBR of a randomly chosen
    stored object; the window is clamped into the data space.
    """
    if not objects:
        raise ConfigurationError("cannot build a workload over zero objects")
    if not (0.0 < area_fraction <= 1.0):
        raise ConfigurationError(
            f"area fraction must be in (0, 1], got {area_fraction}"
        )
    rng = np.random.default_rng((seed, int(area_fraction * 1e9)))
    side = math.sqrt(area_fraction) * data_space
    picks = rng.integers(0, len(objects), n_queries)
    windows: list[Rect] = []
    for pick in picks:
        mbr = objects[int(pick)].mbr
        cx = rng.uniform(mbr.xmin, mbr.xmax) if mbr.width > 0 else mbr.xmin
        cy = rng.uniform(mbr.ymin, mbr.ymax) if mbr.height > 0 else mbr.ymin
        xmin = min(max(cx - side / 2.0, 0.0), data_space - side)
        ymin = min(max(cy - side / 2.0, 0.0), data_space - side)
        windows.append(Rect(xmin, ymin, xmin + side, ymin + side))
    return windows


def point_workload(windows: list[Rect]) -> list[tuple[float, float]]:
    """The point queries of Section 5.5: the centers of the windows."""
    return [w.center() for w in windows]
