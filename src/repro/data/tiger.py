"""Synthetic TIGER-like map generation.

The paper's maps come from US Bureau of the Census TIGER/Line files of
Californian counties ([Bur89]); those exact extracts are not available,
so this module generates their statistical twin (see DESIGN.md's
substitution table):

* **map 1 — streets**: short, mostly straight polylines, heavily
  clustered into "urban areas" (Gaussian mixture) over a sparse rural
  background, with a loose preference for grid orientations;
* **map 2 — boundaries, rivers, railway tracks**: a mixture of long
  meandering polylines (rivers), long straight chains (railways) and
  ring-shaped border polylines (administrative boundaries).

Object byte sizes follow a lognormal distribution whose mean matches
the series' Table 1 value; vertex counts derive from the byte-size
model of :mod:`repro.geometry.sizes`.  Everything is driven by a
deterministic :class:`numpy.random.Generator`, so a (spec, seed) pair
always produces the identical map.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import DEFAULT_DATA_SPACE
from repro.data.series import SeriesSpec
from repro.errors import ConfigurationError
from repro.geometry.feature import SpatialObject
from repro.geometry.polyline import Polyline
from repro.geometry.sizes import OBJECT_HEADER_BYTES, VERTEX_BYTES

__all__ = ["MapGenerator", "generate_map"]

_URBAN_FRACTION = 0.8  # fraction of map-1 objects inside urban clusters
_N_CLUSTERS = 40

# Object byte sizes are bimodal, as in real TIGER extracts: many simple
# chains plus a heavy population of detail-rich objects.  The complex
# fraction carries twice the series mean, so for series C (mean 2490 B)
# a substantial share of objects exceeds the 4 KB page — the overflow
# population behind the primary organization's Figure 12 behaviour.
_COMPLEX_FRACTION = 0.40
_COMPLEX_MEAN_FACTOR = 2.0
_COMPLEX_SIGMA = 0.30
_SIMPLE_SIGMA = 0.50

_MAX_VERTICES = 48
"""Geometric detail cap.  The *byte* size of an object (which drives all
storage and I/O accounting) is an independent attribute — TIGER records
carry names, codes and topology beyond their vertex lists — so chains
above this vertex count keep their full byte size but are generated with
capped geometric detail.  This bounds memory and exact-test CPU without
touching any reported metric."""


class MapGenerator:
    """Generates one synthetic map for a Table 1 series spec.

    Parameters
    ----------
    spec:
        The series/map descriptor (count, average object size).
    seed:
        Seed of the deterministic RNG; the map id is mixed in, so map 1
        and map 2 of one seed differ but stay reproducible.
    data_space:
        Side length of the square data space.
    mbr_expansion:
        Optional factor applied to every object's MBR (``mbr_override``)
        — how Section 6.1 derives join versions with different MBR
        extensions.
    """

    def __init__(
        self,
        spec: SeriesSpec,
        seed: int = 1994,
        data_space: float = DEFAULT_DATA_SPACE,
        mbr_expansion: float | None = None,
    ):
        if mbr_expansion is not None and mbr_expansion < 1.0:
            raise ConfigurationError(
                f"mbr_expansion must be >= 1, got {mbr_expansion}"
            )
        self.spec = spec
        self.data_space = data_space
        self.mbr_expansion = mbr_expansion
        self.rng = np.random.default_rng((seed, spec.map_id))
        # Each map draws its own cluster centers: streets concentrate in
        # cities while rivers/boundaries/rails follow their own geography,
        # which decorrelates the two maps' local densities (matching the
        # paper's fairly selective join, ~0.65 partners per MBR).
        self._region_rng = np.random.default_rng((seed, spec.map_id, 0xE61))

    # ------------------------------------------------------------------
    def generate(self, id_offset: int = 0) -> list[SpatialObject]:
        """Produce the full object list, ids starting at ``id_offset``."""
        sizes = self._draw_sizes()
        anchors, spacings = self._draw_anchors()
        objects: list[SpatialObject] = []
        for i in range(self.spec.n_objects):
            n_vertices = max(2, int((sizes[i] - OBJECT_HEADER_BYTES) // VERTEX_BYTES))
            n_vertices = min(n_vertices, _MAX_VERTICES)
            vertices = self._draw_polyline(anchors[i], float(spacings[i]), n_vertices)
            geometry = Polyline(vertices)
            override = None
            if self.mbr_expansion is not None:
                override = geometry.mbr.expanded(self.mbr_expansion)
            objects.append(
                SpatialObject(
                    id_offset + i,
                    geometry,
                    size_bytes=int(sizes[i]),
                    mbr_override=override,
                )
            )
        return objects

    # ------------------------------------------------------------------
    # statistical components
    # ------------------------------------------------------------------
    def _draw_sizes(self) -> np.ndarray:
        """Bimodal lognormal byte sizes whose mixture mean matches the
        series' Table 1 value, floored at the two-vertex minimum."""
        n = self.spec.n_objects
        mean = float(self.spec.avg_object_size)
        f = _COMPLEX_FRACTION
        complex_mean = _COMPLEX_MEAN_FACTOR * mean
        simple_mean = (1.0 - f * _COMPLEX_MEAN_FACTOR) / (1.0 - f) * mean

        def lognormal(count: int, m: float, sigma: float) -> np.ndarray:
            mu = math.log(m) - sigma * sigma / 2.0
            return self.rng.lognormal(mu, sigma, count)

        n_complex = int(f * n)
        sizes = np.concatenate(
            [
                lognormal(n_complex, complex_mean, _COMPLEX_SIGMA),
                lognormal(n - n_complex, simple_mean, _SIMPLE_SIGMA),
            ]
        )
        self.rng.shuffle(sizes)
        floor = OBJECT_HEADER_BYTES + 2 * VERTEX_BYTES
        return np.maximum(sizes, floor)

    def _draw_anchors(self) -> tuple[np.ndarray, np.ndarray]:
        """Object anchor points plus their *local spacing*.

        Anchors mix Gaussian urban clusters with a uniform rural
        background.  The local spacing — the expected nearest-neighbour
        distance around the anchor — drives the object diameter, so
        city streets are short while rural objects stretch.  Because
        diameters scale with spacing, MBR-intersection statistics (join
        selectivity, answers per window area) are preserved when the
        cardinality is scaled down; byte sizes (series A/B/C) only
        change the vertex density along the chain, never its extent.
        """
        n = self.spec.n_objects
        space = self.data_space
        urban_fraction = _URBAN_FRACTION if self.spec.map_id == 1 else 0.5
        n_urban = int(n * urban_fraction)
        global_spacing = space / math.sqrt(n)

        centers = self._region_rng.uniform(
            0.05 * space, 0.95 * space, (_N_CLUSTERS, 2)
        )
        weights = self._region_rng.dirichlet(np.ones(_N_CLUSTERS) * 0.5)
        sigmas = self._region_rng.uniform(
            0.01 * space, 0.05 * space, _N_CLUSTERS
        )
        # Expected spacing inside a cluster: members spread over ~2*pi*sigma^2.
        members = np.maximum(weights * n_urban, 1.0)
        local = np.sqrt(2.0 * math.pi * sigmas**2 / members)
        local = np.minimum(local, global_spacing)

        assignment = self.rng.choice(_N_CLUSTERS, size=n_urban, p=weights)
        urban = centers[assignment] + self.rng.normal(
            0.0, 1.0, (n_urban, 2)
        ) * sigmas[assignment, None]
        urban_spacing = local[assignment]
        rural = self.rng.uniform(0.0, space, (n - n_urban, 2))
        rural_spacing = np.full(n - n_urban, global_spacing)

        anchors = np.concatenate([urban, rural])
        spacings = np.concatenate([urban_spacing, rural_spacing])
        order = self.rng.permutation(n)
        return np.clip(anchors[order], 0.0, space), spacings[order]

    def _global_spacing(self) -> float:
        return self.data_space / math.sqrt(self.spec.n_objects)

    def _draw_polyline(
        self, anchor: np.ndarray, spacing: float, n_vertices: int
    ) -> list[tuple[float, float]]:
        """One polyline of ``n_vertices`` starting near ``anchor`` with
        a diameter proportional to the local spacing."""
        if self.spec.map_id == 1:
            return self._street(anchor, spacing, n_vertices)
        kind = self.rng.random()
        if kind < 0.4:
            return self._river(anchor, spacing, n_vertices)
        if kind < 0.7:
            return self._railway(anchor, spacing, n_vertices)
        return self._boundary_ring(anchor, spacing, n_vertices)

    def _street(
        self, anchor: np.ndarray, spacing: float, n: int
    ) -> list[tuple[float, float]]:
        """Street chain: grid-aligned block streets mixed with longer
        diagonal arterials.  Diagonal chains produce the large, mostly
        empty MBRs that make real street data overlap heavily — the
        source of the multi-candidate point queries of Section 5.5."""
        urban = spacing < 0.5 * self._global_spacing()
        if urban and self.rng.random() < 0.7:
            # Urban arterial: long, arbitrary orientation (fat MBR).
            # Fat MBRs in *dense* areas drive the heavy MBR overlap of
            # real street maps without inflating the cross-map join
            # selectivity (the other map is sparse there).
            theta = self.rng.uniform(0.0, math.pi)
            length = spacing * self.rng.uniform(3.0, 10.0)
        else:
            # Block street: short and axis-aligned (thin MBR).
            theta = self.rng.choice([0.0, math.pi / 2]) + self.rng.normal(0.0, 0.1)
            length = spacing * self.rng.uniform(0.3, 1.0)
        along = np.linspace(0.0, length, n)
        jitter = self.rng.normal(0.0, length * 0.02, n)
        xs = anchor[0] + along * math.cos(theta) - jitter * math.sin(theta)
        ys = anchor[1] + along * math.sin(theta) + jitter * math.cos(theta)
        return self._clip(xs, ys)

    def _river(
        self, anchor: np.ndarray, spacing: float, n: int
    ) -> list[tuple[float, float]]:
        """Meandering chain: the heading performs a random walk.  The
        meandering contracts the end-to-end extent, so the step budget
        is normalised to a target diameter."""
        diameter = spacing * self.rng.uniform(0.12, 0.30)
        step = diameter / math.sqrt(max(n - 1, 1))
        headings = self.rng.normal(0.0, 0.35, n).cumsum() + self.rng.uniform(
            0.0, 2 * math.pi
        )
        xs = anchor[0] + np.concatenate(([0.0], (step * np.cos(headings))[:-1].cumsum()))
        ys = anchor[1] + np.concatenate(([0.0], (step * np.sin(headings))[:-1].cumsum()))
        return self._clip(xs, ys)

    def _railway(
        self, anchor: np.ndarray, spacing: float, n: int
    ) -> list[tuple[float, float]]:
        """Long, nearly straight chain with slight curvature."""
        length = spacing * self.rng.uniform(0.20, 0.40)
        step = length / max(n - 1, 1)
        headings = self.rng.uniform(0.0, 2 * math.pi) + self.rng.normal(
            0.0, 0.03, n
        ).cumsum()
        xs = anchor[0] + np.concatenate(([0.0], (step * np.cos(headings))[:-1].cumsum()))
        ys = anchor[1] + np.concatenate(([0.0], (step * np.sin(headings))[:-1].cumsum()))
        return self._clip(xs, ys)

    def _boundary_ring(
        self, anchor: np.ndarray, spacing: float, n: int
    ) -> list[tuple[float, float]]:
        """Closed administrative border approximated by a noisy ring
        (stored as a polyline, as topological models keep border lines)."""
        radius = spacing * self.rng.uniform(0.06, 0.14)
        angles = np.linspace(0.0, 2 * math.pi, n, endpoint=False)
        radii = radius * (1.0 + self.rng.normal(0.0, 0.05, n))
        xs = anchor[0] + radii * np.cos(angles)
        ys = anchor[1] + radii * np.sin(angles)
        return self._clip(xs, ys)

    def _clip(self, xs: np.ndarray, ys: np.ndarray) -> list[tuple[float, float]]:
        space = self.data_space
        xs = np.clip(xs, 0.0, space)
        ys = np.clip(ys, 0.0, space)
        return list(zip(xs.tolist(), ys.tolist()))


def generate_map(
    spec: SeriesSpec,
    seed: int = 1994,
    data_space: float = DEFAULT_DATA_SPACE,
    mbr_expansion: float | None = None,
    id_offset: int = 0,
) -> list[SpatialObject]:
    """Convenience wrapper: generate one map in a single call."""
    generator = MapGenerator(
        spec, seed=seed, data_space=data_space, mbr_expansion=mbr_expansion
    )
    return generator.generate(id_offset=id_offset)
