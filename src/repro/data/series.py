"""Table 1: the maps and the test series.

The paper evaluates two maps derived from US Bureau of the Census
TIGER/Line data for Californian counties — map 1 holds 131,461 streets,
map 2 holds 128,971 administrative boundaries, rivers and railway
tracks — in three size variants (series A/B/C) with average object
sizes between 625 B and 3,113 B, and matching maximum cluster sizes
``Smax`` of 80/160/320 KB.

:data:`TABLE1` reproduces those parameters; :func:`scaled` shrinks a
spec's cardinality for laptop-scale runs while keeping object sizes,
page size and ``Smax`` at paper values (I/O counts scale linearly with
cardinality, so speed-up factors and crossovers are preserved).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["SeriesSpec", "TABLE1", "spec_for", "scaled"]


@dataclass(frozen=True, slots=True)
class SeriesSpec:
    """One row of Table 1 (a test series × map combination)."""

    series: str  # "A", "B" or "C"
    map_id: int  # 1 = streets, 2 = boundaries/rivers/rails
    n_objects: int
    avg_object_size: int  # bytes
    smax_kb: int  # maximum cluster unit size in KB

    @property
    def key(self) -> str:
        """The paper's naming, e.g. ``"A-1"``."""
        return f"{self.series}-{self.map_id}"

    @property
    def smax_bytes(self) -> int:
        return self.smax_kb * 1024

    @property
    def total_mb(self) -> float:
        """Expected total size of the exact representations in MB."""
        return self.n_objects * self.avg_object_size / 1e6


TABLE1: dict[str, SeriesSpec] = {
    spec.key: spec
    for spec in (
        SeriesSpec("A", 1, 131_461, 625, 80),
        SeriesSpec("B", 1, 131_461, 1_247, 160),
        SeriesSpec("C", 1, 131_461, 2_490, 320),
        SeriesSpec("A", 2, 128_971, 781, 80),
        SeriesSpec("B", 2, 128_971, 1_558, 160),
        SeriesSpec("C", 2, 128_971, 3_113, 320),
    )
}
"""The six test-series rows of Table 1, keyed ``"A-1"`` … ``"C-2"``."""


def spec_for(key: str) -> SeriesSpec:
    """Look up a Table 1 row by its paper name (e.g. ``"C-1"``)."""
    try:
        return TABLE1[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown test series '{key}'; valid: {sorted(TABLE1)}"
        ) from None


def scaled(spec: SeriesSpec, scale: float) -> SeriesSpec:
    """A spec with the object count scaled by ``scale`` (sizes, Smax
    and everything else stay at paper values)."""
    if not (0.0 < scale <= 1.0):
        raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
    return replace(spec, n_objects=max(100, int(spec.n_objects * scale)))
