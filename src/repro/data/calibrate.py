"""Join-selectivity calibration (Section 6.1's versions *a* and *b*).

The paper derives its two join test series "by using MBRs with
different extensions": version *a* yields 86,094 intersecting MBR pairs
(≈ 0.65 partners per MBR), version *b* some 1.2 million (≈ 9 per MBR).
To reproduce those *ratios* at any dataset scale, this module finds the
MBR expansion factor that hits a target pairs-per-object ratio, using a
uniform-grid counting index and bisection.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.constants import DEFAULT_DATA_SPACE
from repro.errors import ConfigurationError
from repro.geometry.feature import SpatialObject

__all__ = [
    "PAIRS_PER_OBJECT_VERSION_A",
    "PAIRS_PER_OBJECT_VERSION_B",
    "pairs_per_object",
    "calibrate_expansion",
]

PAIRS_PER_OBJECT_VERSION_A = 0.65
"""Version a: each MBR intersects roughly 0.65 MBRs of the other map."""

PAIRS_PER_OBJECT_VERSION_B = 9.0
"""Version b: roughly 9 intersections per MBR."""


def _mbr_matrix(objects: list[SpatialObject], expansion: float) -> np.ndarray:
    rows = np.empty((len(objects), 4), dtype=np.float64)
    for i, obj in enumerate(objects):
        mbr = obj.geometry.mbr if expansion != 1.0 else obj.mbr
        if expansion != 1.0:
            mbr = mbr.expanded(expansion)
        rows[i, 0] = mbr.xmin
        rows[i, 1] = mbr.ymin
        rows[i, 2] = mbr.xmax
        rows[i, 3] = mbr.ymax
    return rows


def _grid_count(
    a: np.ndarray, b: np.ndarray, data_space: float, cells: int = 64
) -> int:
    """Count intersecting (a, b) MBR pairs with a uniform grid.

    Each *b* rectangle is binned into every grid cell it touches; each
    *a* rectangle is tested against the candidates of its cells.  The
    pair is counted at most once (deduplicated per *a* row).
    """
    cell = data_space / cells
    grid: dict[tuple[int, int], list[int]] = defaultdict(list)
    for j in range(len(b)):
        x0 = int(b[j, 0] // cell)
        x1 = int(b[j, 2] // cell)
        y0 = int(b[j, 1] // cell)
        y1 = int(b[j, 3] // cell)
        for cx in range(max(x0, 0), min(x1, cells - 1) + 1):
            for cy in range(max(y0, 0), min(y1, cells - 1) + 1):
                grid[(cx, cy)].append(j)
    total = 0
    for i in range(len(a)):
        x0 = int(a[i, 0] // cell)
        x1 = int(a[i, 2] // cell)
        y0 = int(a[i, 1] // cell)
        y1 = int(a[i, 3] // cell)
        candidates: set[int] = set()
        for cx in range(max(x0, 0), min(x1, cells - 1) + 1):
            for cy in range(max(y0, 0), min(y1, cells - 1) + 1):
                candidates.update(grid.get((cx, cy), ()))
        if not candidates:
            continue
        idx = np.fromiter(candidates, dtype=np.int64)
        rows = b[idx]
        hits = (
            (a[i, 0] <= rows[:, 2])
            & (rows[:, 0] <= a[i, 2])
            & (a[i, 1] <= rows[:, 3])
            & (rows[:, 1] <= a[i, 3])
        )
        total += int(hits.sum())
    return total


def pairs_per_object(
    map_a: list[SpatialObject],
    map_b: list[SpatialObject],
    expansion: float = 1.0,
    data_space: float = DEFAULT_DATA_SPACE,
) -> float:
    """Average number of map-b MBRs each map-a MBR intersects when both
    sides' MBRs are expanded by ``expansion``."""
    a = _mbr_matrix(map_a, expansion)
    b = _mbr_matrix(map_b, expansion)
    return _grid_count(a, b, data_space) / max(1, len(map_a))


def calibrate_expansion(
    map_a: list[SpatialObject],
    map_b: list[SpatialObject],
    target_ratio: float,
    data_space: float = DEFAULT_DATA_SPACE,
    tolerance: float = 0.05,
    max_iterations: int = 20,
) -> float:
    """Find the MBR expansion factor reaching ``target_ratio``
    intersections per object (bisection; returns the factor, >= 1)."""
    if target_ratio <= 0:
        raise ConfigurationError("target ratio must be positive")
    base = pairs_per_object(map_a, map_b, 1.0, data_space)
    if base >= target_ratio:
        return 1.0
    lo, hi = 1.0, 2.0
    while pairs_per_object(map_a, map_b, hi, data_space) < target_ratio:
        hi *= 2.0
        if hi > 512:
            raise ConfigurationError(
                "cannot reach the target ratio with any sane expansion"
            )
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        ratio = pairs_per_object(map_a, map_b, mid, data_space)
        if abs(ratio - target_ratio) / target_ratio <= tolerance:
            return mid
        if ratio < target_ratio:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
