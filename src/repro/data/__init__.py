"""Synthetic TIGER-like datasets and query workloads (Section 5.1)."""

from repro.data.calibrate import (
    PAIRS_PER_OBJECT_VERSION_A,
    PAIRS_PER_OBJECT_VERSION_B,
    calibrate_expansion,
    pairs_per_object,
)
from repro.data.series import TABLE1, SeriesSpec, scaled, spec_for
from repro.data.tiger import MapGenerator, generate_map
from repro.data.workload import (
    PAPER_WINDOW_AREAS,
    point_workload,
    window_workload,
)

__all__ = [
    "SeriesSpec",
    "TABLE1",
    "spec_for",
    "scaled",
    "MapGenerator",
    "generate_map",
    "PAPER_WINDOW_AREAS",
    "window_workload",
    "point_workload",
    "calibrate_expansion",
    "pairs_per_object",
    "PAIRS_PER_OBJECT_VERSION_A",
    "PAIRS_PER_OBJECT_VERSION_B",
]
