"""repro — a reproduction of Brinkhoff & Kriegel (VLDB 1994):
*The Impact of Global Clustering on Spatial Database Systems*.

The package implements the paper's **cluster organization** (an R*-tree
whose data pages map 1:1 onto bounded extents of physically consecutive
disk pages) together with every substrate its evaluation needs: a full
R*-tree, a three-component disk cost model, the secondary and primary
organization models, buddy-system storage management, the geometric
threshold / SLM / vector-read query techniques, the R*-tree spatial
join, and a synthetic TIGER-like data generator.

Quick start::

    from repro import SpatialDatabase

    db = SpatialDatabase(organization="cluster", avg_object_size=625)
    db.insert_polyline(1, [(0.0, 0.0), (5.0, 5.0), (10.0, 3.0)])
    db.finalize()
    result = db.window_query(0, 0, 20, 20)
    print(result.objects, result.io.total_ms)
"""

from repro.buffer import POLICIES, BufferPool, LRUBuffer
from repro.constants import (
    ENTRY_SIZE,
    LATENCY_TIME_MS,
    PAGE_CAPACITY,
    PAGE_SIZE,
    SEEK_TIME_MS,
    TRANSFER_TIME_MS,
)
from repro.core import ClusterOrganization, ClusterPolicy, ClusterUnit
from repro.database import SpatialDatabase
from repro.disk import DiskModel, DiskParameters, DiskStats
from repro.errors import (
    AllocationError,
    ConfigurationError,
    DiskError,
    GeometryError,
    ObjectTooLargeError,
    ReproError,
    StorageError,
    TreeError,
)
from repro.geometry import Polygon, Polyline, Rect, SpatialObject
from repro.iosched import (
    ADMISSIONS,
    PREFETCHERS,
    SCHEDULERS,
    AccessPlan,
    AdmissionPolicy,
    IOScheduler,
    OverlapScheduler,
    Prefetcher,
    PriorityAdmission,
    SyncScheduler,
    TokenBucketAdmission,
    VirtualClock,
)
from repro.join import JoinResult, spatial_join
from repro.pagestore import (
    MIGRATIONS,
    PLACEMENTS,
    PageStore,
    ShardedPageStore,
    TieredPageStore,
    VectoredCost,
)
from repro.rtree import RStarTree
from repro.storage import (
    PrimaryOrganization,
    QueryResult,
    SecondaryOrganization,
)
from repro.workload import (
    SessionsReport,
    WorkloadEngine,
    WorkloadReport,
    load_trace,
    mixed_stream,
    save_trace,
)

__version__ = "1.0.0"

__all__ = [
    "SpatialDatabase",
    "SpatialObject",
    "Rect",
    "Polyline",
    "Polygon",
    "RStarTree",
    "ClusterOrganization",
    "ClusterPolicy",
    "ClusterUnit",
    "SecondaryOrganization",
    "PrimaryOrganization",
    "QueryResult",
    "JoinResult",
    "spatial_join",
    "BufferPool",
    "LRUBuffer",
    "POLICIES",
    "WorkloadEngine",
    "WorkloadReport",
    "SessionsReport",
    "mixed_stream",
    "save_trace",
    "load_trace",
    "AccessPlan",
    "IOScheduler",
    "SyncScheduler",
    "OverlapScheduler",
    "VirtualClock",
    "Prefetcher",
    "AdmissionPolicy",
    "TokenBucketAdmission",
    "PriorityAdmission",
    "SCHEDULERS",
    "PREFETCHERS",
    "ADMISSIONS",
    "PageStore",
    "ShardedPageStore",
    "TieredPageStore",
    "VectoredCost",
    "PLACEMENTS",
    "MIGRATIONS",
    "DiskModel",
    "DiskParameters",
    "DiskStats",
    "ReproError",
    "GeometryError",
    "DiskError",
    "AllocationError",
    "StorageError",
    "ObjectTooLargeError",
    "TreeError",
    "ConfigurationError",
    "PAGE_SIZE",
    "PAGE_CAPACITY",
    "ENTRY_SIZE",
    "SEEK_TIME_MS",
    "LATENCY_TIME_MS",
    "TRANSFER_TIME_MS",
    "__version__",
]
