"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so a
caller can catch every library failure with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class GeometryError(ReproError):
    """An operation received geometrically invalid input
    (e.g. a rectangle with ``xmin > xmax`` or a polyline with one vertex)."""


class DiskError(ReproError):
    """The disk model was asked for an impossible operation
    (e.g. reading an extent that was never allocated)."""


class AllocationError(DiskError):
    """The page or buddy allocator could not satisfy a request."""


class PageCorruptionError(DiskError):
    """A page read from the file-backed store failed its checksum (torn
    write, bit rot, or a truncated file) and bounded retries did not
    produce a clean copy."""


class StorageError(ReproError):
    """An organization model was used inconsistently
    (e.g. querying an object identifier that was never inserted)."""


class ObjectTooLargeError(StorageError):
    """An object exceeds the maximum size the organization can store
    (for the cluster organization: objects larger than ``Smax``)."""


class TreeError(ReproError):
    """An internal R*-tree invariant was violated; indicates a bug or a
    corrupted tree rather than bad user input."""


class ConfigurationError(ReproError):
    """Invalid experiment or database configuration parameters."""
