"""Declustering ablation: the sharded page store behind the buffer pool.

Where ``test_ablations.py::test_ablation_parallel_declustering`` prices
the dedicated :class:`~repro.parallel.decluster.ParallelClusterReader`
(one access path, explicit unit deal), this ablation measures the
*dynamic* configuration — ``SpatialDatabase(n_disks=..., placement=...)``
— where the whole storage stack (construction, R*-tree pager, unit and
oversize transfers) runs over the sharded store and cluster units are
declustered by the Hilbert-on-extent placement at allocation time.

Reported per configuration: window-query device time (summed over the
disks), response time (per query the busiest disk, i.e. the paper's
parallel execution model) and the achieved parallelism.
"""

from __future__ import annotations

from repro.core.organization import ClusterOrganization
from repro.core.policy import ClusterPolicy
from repro.database import SpatialDatabase
from repro.eval.report import format_table

from benchmarks.conftest import once


def build_db(ctx, series, n_disks, placement):
    spec = ctx.config.spec(series)
    db = SpatialDatabase(
        smax_bytes=spec.smax_bytes,
        n_disks=n_disks,
        placement=placement,
        construction_buffer_pages=ctx.config.construction_buffer_pages,
    )
    db.build(ctx.objects(series))
    return db


def measure_windows(db, windows):
    """Per-query (device_ms, response_ms) sums over a window workload."""
    device = 0.0
    response = 0.0
    answers = 0
    for window in windows:
        mark = db.disk.snapshot()
        answers += len(db.storage.window_query(window).objects)
        cost = db.disk.cost_since(mark)
        device += cost.total_ms
        response += cost.response_ms
    return device, response, answers


def test_pagestore_declustering(ctx, benchmark, record_table):
    """Section 7, system-wide: 1% window queries over 1-8 disks with the
    three placement policies; spatial (Hilbert-on-extent) placement must
    deliver > 1.5x parallelism on 4 disks."""

    windows = ctx.windows("A-1", 1e-2)
    configs = [
        (1, "spatial"),
        (2, "spatial"),
        (4, "round_robin"),
        (4, "hash"),
        (4, "spatial"),
        (8, "spatial"),
    ]

    def run():
        rows = []
        baseline_answers = None
        for n_disks, placement in configs:
            db = build_db(ctx, "A-1", n_disks, placement)
            device, response, answers = measure_windows(db, windows)
            if baseline_answers is None:
                baseline_answers = answers
            label = placement if n_disks > 1 else "(single disk)"
            rows.append(
                (
                    n_disks,
                    label,
                    device / 1000.0,
                    response / 1000.0,
                    device / response if response else 1.0,
                    answers == baseline_answers,
                )
            )
        return rows

    rows = once(benchmark, run)
    record_table(
        "ablation_pagestore_decluster",
        format_table(
            ["disks", "placement", "device (s)", "response (s)",
             "parallelism", "answers ok"],
            rows,
            title="Ablation — sharded page store declustering "
                  "(A-1, 1% windows, whole stack behind the pool)",
        ),
    )
    by_config = {(r[0], r[1]): r for r in rows}
    # Declustered execution never changes answers.
    assert all(r[5] for r in rows)
    # One disk: response time == device time.
    single = by_config[(1, "(single disk)")]
    assert single[4] == 1.0
    # The acceptance bar: 4 disks + spatial placement parallelise the
    # window workload by more than 1.5x.
    spatial4 = by_config[(4, "spatial")]
    assert spatial4[4] > 1.5
    # More disks never hurt the response time.
    assert by_config[(4, "spatial")][3] <= by_config[(2, "spatial")][3] * 1.05
    assert by_config[(8, "spatial")][3] <= by_config[(4, "spatial")][3] * 1.05
    # Spatial placement beats the blind policies where it matters: the
    # response time clients observe (it also keeps units whole on one
    # disk, so its *device* time stays at the single-disk level while
    # chunk-striping tears units across seek boundaries).
    assert spatial4[3] <= by_config[(4, "round_robin")][3] * 1.05
    assert spatial4[3] <= by_config[(4, "hash")][3] * 1.05
    assert spatial4[2] <= by_config[(4, "round_robin")][2]


def test_pagestore_adapter_matches_dedicated_reader(ctx, benchmark, record_table):
    """The re-expressed ParallelClusterReader (now a thin adapter over
    ShardedPageStore) must price a window workload exactly like a
    hand-rolled per-unit deal over a private disk bank — the numbers the
    original implementation reported."""
    from repro.disk.model import DiskModel
    from repro.parallel.decluster import ParallelClusterReader

    org = ctx.org("cluster", "A-1")
    windows = ctx.windows("A-1", 1e-2)

    def run():
        rows = []
        for n_disks in (2, 4):
            reader = ParallelClusterReader(org, n_disks, policy="spatial")
            # Reference: replay the same unit deal on bare disks.
            disks = [DiskModel(org.disk.params) for _ in range(n_disks)]
            expected_response = 0.0
            expected_total = 0.0
            for window in windows:
                per_disk = [0.0] * n_disks
                for leaf, entries in org.tree.window_leaves(window):
                    unit = leaf.tag
                    if unit is None or not entries:
                        continue
                    used = min(unit.used_pages, unit.extent.npages)
                    if used == 0:
                        continue
                    disk = reader.disk_of(unit)
                    per_disk[disk] += disks[disk].read(unit.extent.start, used)
                expected_response += max(per_disk)
                expected_total += sum(per_disk)
            actual_response = reader.workload_response_ms(windows)
            actual_total = reader.store.total_ms
            rows.append(
                (n_disks, actual_response, expected_response,
                 actual_total, expected_total)
            )
        return rows

    rows = once(benchmark, run)
    record_table(
        "ablation_pagestore_adapter",
        format_table(
            ["disks", "adapter response ms", "reference response ms",
             "adapter device ms", "reference device ms"],
            rows,
            title="ParallelClusterReader adapter vs hand-rolled disk bank "
                  "(A-1, 1% windows)",
        ),
    )
    for _n, actual_r, expected_r, actual_t, expected_t in rows:
        assert actual_r == expected_r
        assert actual_t == expected_t
