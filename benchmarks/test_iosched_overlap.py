"""I/O pipeline ablation: overlapped (async-simulated) scheduling and
prefetching over the declustered page store.

Where ``test_pagestore_decluster.py`` prices one serial query stream
against the sharded store (response = per-query max over the disks),
this ablation runs **two interleaved client sessions** through the
request-based I/O pipeline of :mod:`repro.iosched`:

* ``sync`` — every access plan executes immediately; the workload's
  makespan is the serial sum of the per-operation max-over-disks
  responses (PR 2's pricing model);
* ``overlap`` — the same priced requests, additionally timed on the
  virtual clock: an operation's plans dispatch asynchronously at its
  start, queue per disk, and overlap across the clients, so disks
  service different sessions concurrently;
* ``overlap`` + ``cluster`` prefetch — the cluster-unit-aware
  read-ahead rides along on the non-blocking plan path.

Device time must not move between sync and overlap (the schedulers
issue identical priced calls); the makespan must drop on four disks.
"""

from __future__ import annotations

from repro.database import SpatialDatabase
from repro.eval.report import format_table
from repro.workload.streams import mixed_stream

from benchmarks.conftest import once

CONFIGS = [
    # (n_disks, scheduler, prefetch)
    (1, "sync", "none"),
    (1, "overlap", "none"),
    (4, "sync", "none"),
    (4, "overlap", "none"),
    (4, "overlap", "cluster"),
]


def build_db(ctx, series, n_disks, scheduler, prefetch):
    spec = ctx.config.spec(series)
    db = SpatialDatabase(
        smax_bytes=spec.smax_bytes,
        n_disks=n_disks,
        placement="spatial",
        scheduler=scheduler,
        prefetch=prefetch,
        construction_buffer_pages=ctx.config.construction_buffer_pages,
    )
    db.build(ctx.objects(series))
    return db


def client_streams(ctx, series):
    """Two deterministic mixed query streams (distinct seeds)."""
    objects = ctx.objects(series)
    return {
        "alpha": mixed_stream(
            objects, n_windows=40, n_points=20, seed=ctx.config.seed + 3
        ),
        "beta": mixed_stream(
            objects, n_windows=40, n_points=20, seed=ctx.config.seed + 5
        ),
    }


def test_iosched_overlap(ctx, benchmark, record_table):
    """Acceptance: on 4 disks the overlapped concurrent workload's
    response time (makespan) drops below the sync baseline at
    bit-identical device time."""

    def run():
        rows = []
        baseline_results = None
        for n_disks, scheduler, prefetch in CONFIGS:
            db = build_db(ctx, "A-1", n_disks, scheduler, prefetch)
            report = db.run_sessions(
                client_streams(ctx, "A-1"), buffer_pages=400
            )
            results = sum(p.results for p in report.phases)
            if baseline_results is None:
                baseline_results = results
            rows.append(
                (
                    n_disks,
                    scheduler,
                    prefetch,
                    f"{report.hit_rate:.1%}",
                    report.total_io.total_ms / 1000.0,
                    report.total_response_ms / 1000.0,
                    report.makespan_ms / 1000.0,
                    results == baseline_results,
                )
            )
        return rows

    rows = once(benchmark, run)
    record_table(
        "ablation_iosched_overlap",
        format_table(
            ["disks", "scheduler", "prefetch", "hit rate", "device (s)",
             "client resp (s)", "makespan (s)", "answers ok"],
            rows,
            title="Ablation — overlapped I/O scheduling & prefetching "
                  "(A-1, 2 interleaved clients, 400-page pool)",
        ),
    )
    by_config = {(r[0], r[1], r[2]): r for r in rows}
    # Interleaving and scheduling never change answers.
    assert all(r[7] for r in rows)
    # The schedulers issue identical priced calls: device time matches
    # exactly between sync and overlap (same disks, no prefetch).
    for n_disks in (1, 4):
        assert (
            by_config[(n_disks, "sync", "none")][4]
            == by_config[(n_disks, "overlap", "none")][4]
        )
    # One arm cannot overlap with itself: the single-disk makespan
    # stays at the device time.
    single = by_config[(1, "overlap", "none")]
    assert single[6] >= single[4] * 0.999
    # The acceptance bar: 4 disks + overlap beat the sync baseline's
    # response time.
    sync4 = by_config[(4, "sync", "none")]
    overlap4 = by_config[(4, "overlap", "none")]
    assert overlap4[6] < sync4[6]
