"""Figure 17 — the complete three-step intersection join.

Paper shape: with the secondary organization the object transfer
dominates; the cluster organization slashes exactly that component
while MBR-join and exact-test costs stay put, so the complete join
speeds up by ~3.9× (version a) / ~4.3× (version b).
"""

from __future__ import annotations

from repro.eval.joins import format_fig17, run_fig17_complete_join

from benchmarks.conftest import once


def test_fig17_complete_join(ctx, benchmark, record_table):
    rows = once(benchmark, lambda: run_fig17_complete_join(ctx))
    record_table("fig17_complete_join", format_fig17(rows))

    by_version: dict[str, dict[str, object]] = {}
    for row in rows:
        by_version.setdefault(row.version, {})[row.organization] = row

    for version, orgs in by_version.items():
        sec, clu = orgs["secondary"], orgs["cluster"]
        # The exact geometry test costs the same in both organizations.
        assert abs(sec.exact_s - clu.exact_s) < 1e-9
        # Global clustering slashes the object transfer…
        assert clu.transfer_s < 0.5 * sec.transfer_s, version
        # …and the transfer dominates the secondary organization's cost.
        assert sec.transfer_s > sec.mbr_join_s, version
        # Total speed-up in the paper's ballpark (>2x; paper ~4x).
        speedup = sec.total_s / clu.total_s
        assert speedup > 1.5, (version, speedup)
