"""Figure 14 — spatial join I/O across the organization models
(C-1 ⋈ C-2, versions a and b, buffer sweep).

Paper shape: the cluster organization wins clearly at every buffer
size; speed-ups versus the secondary organization reach ~4.9 (version
a) and ~9.5 (version b), i.e. the denser join profits more from global
clustering.
"""

from __future__ import annotations

from repro.eval.joins import format_fig14, run_fig14_join_orgs

from benchmarks.conftest import once


def test_fig14_join_orgs(ctx, benchmark, record_table):
    rows = once(benchmark, lambda: run_fig14_join_orgs(ctx))
    record_table("fig14_join_orgs", format_fig14(rows))

    for row in rows:
        # All organizations compute the same candidate pairs.
        pair_counts = {r.candidate_pairs for r in row.per_org.values()}
        assert len(pair_counts) == 1, row
        # The cluster organization always wins.
        assert row.speedup_vs_secondary > 1.5, row
        assert row.speedup_vs_primary > 1.0, row

    # Version b (the denser join) produces far more pairs and profits
    # at least as much from clustering as version a.
    a_rows = [r for r in rows if r.version == "a"]
    b_rows = [r for r in rows if r.version == "b"]
    assert b_rows[0].per_org["cluster"].candidate_pairs > (
        4 * a_rows[0].per_org["cluster"].candidate_pairs
    )
    assert max(r.speedup_vs_secondary for r in b_rows) >= 0.8 * max(
        r.speedup_vs_secondary for r in a_rows
    )

    # Larger buffers help every organization (monotone-ish I/O).
    for version_rows in (a_rows, b_rows):
        first, last = version_rows[0], version_rows[-1]
        for org in ("secondary", "primary", "cluster"):
            assert last.per_org[org].io_ms <= first.per_org[org].io_ms * 1.1


def test_fig14_smaller_objects_gain_more(ctx, benchmark, record_table):
    """Section 6.1's closing remark: "For spatial joins with smaller
    object sizes (B-1/2 and A-1/2), the performance gains are even
    higher" — compare the A and C series at one buffer size."""

    def run():
        buffers = [ctx.config.join_buffer(1600)]
        rows_a = run_fig14_join_orgs(
            ctx, "A-1", "A-2", versions=("a",), buffers=buffers
        )
        rows_c = run_fig14_join_orgs(
            ctx, "C-1", "C-2", versions=("a",), buffers=buffers
        )
        return rows_a[0], rows_c[0]

    row_a, row_c = once(benchmark, run)
    from repro.eval.report import format_table

    record_table(
        "fig14_series_comparison",
        format_table(
            ["series", "sec (s)", "cluster (s)", "speedup vs sec"],
            [
                ("A-1/2 a", row_a.per_org["secondary"].io_s,
                 row_a.per_org["cluster"].io_s, row_a.speedup_vs_secondary),
                ("C-1/2 a", row_c.per_org["secondary"].io_s,
                 row_c.per_org["cluster"].io_s, row_c.speedup_vs_secondary),
            ],
            title="Figure 14 addendum — smaller objects profit more "
                  "(buffer 1600 scaled)",
        ),
    )
    assert row_a.speedup_vs_secondary > row_c.speedup_vs_secondary
