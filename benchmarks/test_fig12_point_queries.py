"""Figure 12 — point queries across the organization models.

Paper shape: almost no difference between the secondary and the cluster
organization (global clustering costs selective queries nothing); the
primary organization is best for the smallest objects (A-1) and loses
its edge as objects grow (series C's page-overflowing objects each cost
an extra access).
"""

from __future__ import annotations

from repro.eval.point import format_fig12, run_fig12_points

from benchmarks.conftest import once


def test_fig12_point_queries(ctx, benchmark, record_table):
    rows = once(benchmark, lambda: run_fig12_points(ctx, ("A-1", "B-1", "C-1")))
    record_table("fig12_point_queries", format_fig12(rows))

    for row in rows:
        # "Almost no difference between the secondary organization and
        # the cluster organization."
        assert 0.8 <= row.cluster_vs_secondary <= 1.2, row.series

    by_series = {r.series: r for r in rows}

    def primary_advantage(series: str) -> float:
        row = by_series[series]
        return (
            row.per_org["secondary"].ms_per_4kb
            / row.per_org["primary"].ms_per_4kb
        )

    # The primary organization profits from small objects and loses the
    # advantage as objects grow (A-1 best, C-1 relatively worst).
    assert primary_advantage("A-1") > primary_advantage("C-1")
    assert primary_advantage("A-1") > 1.2
