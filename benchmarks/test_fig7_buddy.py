"""Figure 7 — storage utilization and construction cost with the
restricted buddy system (3 buddy sizes).

Paper shape: the buddy system brings the cluster organization's
utilization to roughly the primary organization's level; construction
cost rises only slightly (the unit moves between buddies).
"""

from __future__ import annotations

from repro.eval.construction import format_fig7, run_fig7_buddy

from benchmarks.conftest import once

SERIES = ("A-1", "B-1", "C-1")


def test_fig7_buddy(ctx, benchmark, record_table):
    rows = once(benchmark, lambda: run_fig7_buddy(ctx, SERIES))
    record_table("fig7_buddy", format_fig7(rows))

    for row in rows:
        assert row.buddy_pages < row.fixed_pages, row.series
        # "About the same storage utilization as the primary organization"
        assert abs(row.buddy_pages - row.primary_pages) < 0.35 * row.primary_pages
        # "The cost of construction is only slightly higher than before"
        assert row.fixed_construction_s <= row.buddy_construction_s
        assert row.buddy_construction_s < 1.35 * row.fixed_construction_s
        assert row.buddy_moves > 0
