"""Ablation — background reorganization as a paced workload (PR 10).

A cluster database is degraded by online deletes: dead space
accumulates in the cluster units (compaction is lazy), so every window
query drags dead pages along.  The same foreground traffic then runs
twice over the overlap scheduler with priority admission — once
without and once with interleaved ``ana-reorg-`` sessions, each one
:class:`~repro.reorg.Reorganizer` round moving a bounded page budget
through priced write plans.

Acceptance: paced reorganization recovers at least **half** the
clustering-quality gap (live fraction of the pages a unit scan pays
for) while the foreground interactive p95 stays within **1.5x** of the
no-reorg baseline — background repair must not starve the foreground.
"""

from __future__ import annotations

from repro.database import SpatialDatabase
from repro.eval.report import format_table
from repro.iosched.admission import PriorityAdmission
from repro.reorg import Reorganizer, reorg_traffic
from repro.workload.traffic import class_of_session, make_traffic

from benchmarks.conftest import once

SESSIONS = 1200
DELETE_STRIDE = 2      # delete every other object
BUDGET_PAGES = 64
ROUNDS = 40


def run_reorg_ablation(ctx, series="A-1"):
    spec = ctx.config.spec(series)
    objects = ctx.objects(series)
    doomed = [o.oid for i, o in enumerate(objects) if i % DELETE_STRIDE == 0]
    survivors = [o for i, o in enumerate(objects) if i % DELETE_STRIDE != 0]

    rows = []
    for with_reorg in (False, True):
        db = SpatialDatabase(
            smax_bytes=spec.smax_bytes,
            n_disks=4,
            scheduler="overlap",
            construction_buffer_pages=ctx.config.construction_buffer_pages,
        )
        db.build(objects)
        for oid in doomed:
            db.delete(oid)
        reorg = Reorganizer(db, budget_pages=BUDGET_PAGES)
        degraded = reorg.quality()
        traffic = make_traffic(
            survivors,
            SESSIONS,
            rate_per_s=200.0,
            seed=ctx.config.seed + 29,
        )
        sessions = list(traffic)
        if with_reorg:
            span = max(s.arrival_ms for s in traffic)
            sessions += reorg_traffic(
                reorg, rounds=ROUNDS, period_ms=max(span / ROUNDS, 1.0)
            )
        report = db.run_traffic(
            sessions,
            buffer_pages=512,
            admission=PriorityAdmission(classifier=class_of_session),
        )
        inter = report.traffic_class("interactive")
        rows.append(
            (
                "with reorg" if with_reorg else "no reorg",
                round(degraded, 4),
                round(reorg.quality(), 4),
                reorg.moved_pages,
                reorg.runs,
                inter.p95_ms if inter else 0.0,
                report.makespan_ms / 1000.0,
            )
        )
    return rows


def test_reorg_recovery(ctx, benchmark, record_table):
    """Acceptance: paced reorganization recovers >= half the
    clustering-quality gap at <= 1.5x foreground p95 interference."""
    rows = once(benchmark, lambda: run_reorg_ablation(ctx))

    record_table(
        "ablation_reorg",
        format_table(
            ["run", "quality degraded", "quality after", "moved pages",
             "rounds", "int p95 (ms)", "makespan (s)"],
            rows,
            title="Ablation — background reorganization "
                  f"(A-1, {SESSIONS} sessions, 4 disks, priority "
                  f"admission, {ROUNDS} rounds x {BUDGET_PAGES} pages)",
        ),
    )

    by_run = {r[0]: r for r in rows}
    base, reorg = by_run["no reorg"], by_run["with reorg"]
    # Both runs degrade identically before the traffic.
    assert reorg[1] == base[1]
    # Without reorganization the dead space stays.
    assert base[2] == base[1] and base[3] == 0
    # The acceptance bar: at least half the quality gap recovered ...
    gap = 1.0 - reorg[1]
    assert gap > 0.0
    assert reorg[2] - reorg[1] >= 0.5 * gap
    assert reorg[3] > 0
    # ... with bounded foreground interference.
    assert reorg[5] <= 1.5 * base[5]
