"""Wall-clock overhead budget of the *disabled* observability layer.

The tracer guards on the hot path are one module-global load plus an
identity test (``if _obs.ACTIVE is not None``) in
:meth:`DiskModel._transfer` / :meth:`DiskModel.charge` and one in
:meth:`SyncScheduler.execute`.  This benchmark measures what those
guards cost when tracing is off (the default) by racing the real
classes against ``Bare*`` subclasses whose pricing bodies are replicas
with the guard deleted.

The comparison is wall-clock and therefore noisy on shared CI
machines, so the <2% budget is only *asserted* when
``REPRO_OBS_OVERHEAD_STRICT=1`` is set (the CI observability smoke
sets it in a non-blocking step); otherwise a loose sanity bound keeps
the test deterministic.  What is always asserted: pricing with the
guards present (and tracing disabled) is bit-identical to pricing
without them.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.data.tiger import generate_map
from repro.data.workload import window_workload
from repro.database import SpatialDatabase
from repro.disk.model import DiskModel, _Request
from repro.iosched.scheduler import SyncScheduler


class BareDisk(DiskModel):
    """The disk model with the tracer guards stripped from pricing."""

    __slots__ = ()

    def _transfer(self, start, npages, continuation, kind):
        from repro.disk.model import DiskError

        if npages <= 0:
            raise DiskError(f"cannot transfer {npages} pages")
        if start < 0:
            raise DiskError(f"negative page number {start}")
        p = self.params
        sequential = self._head is not None and start == self._head
        if sequential:
            cost = p.sequential_ms(npages)
            self._stats.transfer_ms += npages * p.transfer_ms
        elif continuation:
            cost = p.continuation_ms(npages)
            self._stats.rotations += 1
            self._stats.latency_ms += p.latency_ms
            self._stats.transfer_ms += npages * p.transfer_ms
        else:
            cost = p.random_access_ms(npages)
            self._stats.seeks += 1
            self._stats.rotations += 1
            self._stats.seek_ms += p.seek_ms
            self._stats.latency_ms += p.latency_ms
            self._stats.transfer_ms += npages * p.transfer_ms
        self._stats.requests += 1
        self._stats.pages_transferred += npages
        self._head = start + npages
        if self.trace:
            self.requests.append(_Request(kind, start, npages, cost))
        return cost

    def charge(self, seeks=0, rotations=0, pages=0):
        from repro.disk.model import DiskError

        if min(seeks, rotations, pages) < 0:
            raise DiskError("cannot charge negative cost components")
        p = self.params
        self._stats.seeks += seeks
        self._stats.rotations += rotations
        self._stats.pages_transferred += pages
        self._stats.seek_ms += seeks * p.seek_ms
        self._stats.latency_ms += rotations * p.latency_ms
        self._stats.transfer_ms += pages * p.transfer_ms
        if seeks or rotations or pages:
            self._stats.requests += 1
        return seeks * p.seek_ms + rotations * p.latency_ms + pages * p.transfer_ms


class BareSync(SyncScheduler):
    """The sync scheduler without the tracer dispatch check."""

    def execute(self, plan, pool):
        return self._run(plan, pool)


def _build(ctx, bare: bool) -> SpatialDatabase:
    spec = ctx.config.spec("A-1")
    objects = generate_map(spec, seed=ctx.config.seed)
    kwargs = dict(smax_bytes=spec.smax_bytes)
    if bare:
        kwargs.update(_disk=BareDisk(), scheduler=BareSync())
    db = SpatialDatabase(**kwargs)
    db.build(objects)
    return db


def test_disabled_tracing_overhead_within_budget(ctx):
    spec = ctx.config.spec("A-1")
    objects = generate_map(spec, seed=ctx.config.seed)
    windows = window_workload(
        objects, 1e-3, n_queries=80, seed=ctx.config.seed + 11
    )

    guarded = _build(ctx, bare=False)
    bare = _build(ctx, bare=True)

    def sweep(db) -> float:
        begin = time.perf_counter()
        for window in windows:
            db.storage.window_query(window)
        return time.perf_counter() - begin

    # Warm both, then interleave the repeats so clock drift and cache
    # state hit both variants evenly.
    sweep(guarded)
    sweep(bare)
    guarded_times, bare_times = [], []
    for _ in range(5):
        guarded_times.append(sweep(guarded))
        bare_times.append(sweep(bare))

    # Pricing must be bit-identical: the guard never changes costs.
    assert guarded.disk.total_ms == bare.disk.total_ms

    ratio = statistics.median(guarded_times) / statistics.median(bare_times)
    print(
        f"\ndisabled-tracing overhead: guarded/bare wall-clock ratio "
        f"{ratio:.4f} (budget 1.02 strict)"
    )
    if os.environ.get("REPRO_OBS_OVERHEAD_STRICT") == "1":
        assert ratio < 1.02, (
            f"disabled tracing costs {100 * (ratio - 1):.2f}% wall clock; "
            "budget is 2%"
        )
    else:
        # Loose sanity bound only — wall-clock assertions flake on busy
        # machines, so the strict budget is enforced by the CI smoke.
        assert ratio < 1.5
