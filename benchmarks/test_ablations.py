"""Ablation benchmarks for the design decisions DESIGN.md calls out.

These go beyond the paper's figures: each ablation isolates one design
choice of the cluster organization and quantifies it.

* ``Smax`` factor — the 1.5 in ``Smax = 1.5 * M * S_obj``;
* leaf-level forced reinsert — Section 4.2.1 switches it off because a
  reinsertion physically moves objects between cluster units;
* buddy size-set cardinality — the paper restricts the buddy system to
  3 sizes; what do 1, 2, 4 buy?
* SLM gap length — the read-schedule rule ``l = tl/tt - 1/2``;
* multi-disk declustering — the Section 7 outlook.
"""

from __future__ import annotations

from repro.core.organization import ClusterOrganization
from repro.core.policy import ClusterPolicy
from repro.core.techniques import slm_schedule
from repro.disk.params import DiskParameters
from repro.eval.metrics import run_window_queries
from repro.eval.report import format_table
from repro.parallel.decluster import ParallelClusterReader

from benchmarks.conftest import once


def build_cluster(ctx, series, smax_bytes=None, buddy_sizes=None,
                  leaf_reinsert=False):
    spec = ctx.config.spec(series)
    org = ClusterOrganization(
        policy=ClusterPolicy(
            smax_bytes or spec.smax_bytes, buddy_sizes=buddy_sizes
        ),
        leaf_reinsert=leaf_reinsert,
        construction_buffer_pages=ctx.config.construction_buffer_pages,
    )
    org.build(ctx.objects(series))
    return org


def test_ablation_smax_factor(ctx, benchmark, record_table):
    """The cluster-size rule: vary the 1.5 factor.

    Expected: with the complete-read technique, query cost is fairly
    insensitive to the cluster size (the paper's Section 5.4.4 point),
    while storage (fixed units) grows with Smax.
    """

    def run():
        rows = []
        spec = ctx.config.spec("B-1")
        windows = ctx.windows("B-1", 1e-3)
        for factor in (0.5, 1.0, 1.5, 3.0):
            smax_pages = max(2, int(spec.smax_bytes / 4096 * factor / 1.5))
            org = build_cluster(ctx, "B-1", smax_bytes=smax_pages * 4096)
            agg = run_window_queries(org, windows)
            rows.append(
                (factor, smax_pages, org.occupied_pages(),
                 org.construction_io.total_s, agg.ms_per_4kb)
            )
        return rows

    rows = once(benchmark, run)
    record_table(
        "ablation_smax_factor",
        format_table(
            ["Smax factor", "unit pages", "occupied pages",
             "construction (s)", "0.1% windows (ms/4KB)"],
            rows,
            title="Ablation — cluster size factor (B-1, complete reads)",
        ),
    )
    costs = [r[4] for r in rows]
    # Query performance varies far less than the 6x size sweep.
    assert max(costs) < 3.0 * min(costs)


def test_ablation_leaf_reinsert(ctx, benchmark, record_table):
    """Section 4.2.1's second modification: forced reinsert on the data
    page level moves objects between cluster units and must hurt
    construction while buying little at query time."""

    def run():
        rows = []
        windows = ctx.windows("A-1", 1e-3)
        for reinsert in (False, True):
            org = build_cluster(ctx, "A-1", leaf_reinsert=reinsert)
            agg = run_window_queries(org, windows)
            rows.append(
                ("on" if reinsert else "off (paper)",
                 org.construction_io.total_s,
                 org.tree.leaf_count,
                 agg.ms_per_4kb)
            )
        return rows

    rows = once(benchmark, run)
    record_table(
        "ablation_leaf_reinsert",
        format_table(
            ["leaf reinsert", "construction (s)", "data pages",
             "0.1% windows (ms/4KB)"],
            rows,
            title="Ablation — forced reinsert on the data-page level (A-1)",
        ),
    )
    off, on = rows[0], rows[1]
    # Reinserting costs construction I/O (it moves objects) ...
    assert on[1] > off[1]
    # ... while query cost stays in the same ballpark.
    assert off[3] < 1.4 * on[3]


def test_ablation_buddy_sizes(ctx, benchmark, record_table):
    """How many buddy sizes are worth having?  The paper uses 3."""

    def run():
        rows = []
        for sizes in (None, 2, 3, 5):
            org = build_cluster(ctx, "B-1", buddy_sizes=sizes)
            rows.append(
                ("fixed" if sizes is None else str(sizes),
                 org.occupied_pages(),
                 org.construction_io.total_s,
                 org.unit_moves)
            )
        return rows

    rows = once(benchmark, run)
    record_table(
        "ablation_buddy_sizes",
        format_table(
            ["buddy sizes", "occupied pages", "construction (s)", "moves"],
            rows,
            title="Ablation — buddy size-set cardinality (B-1)",
        ),
    )
    pages = [r[1] for r in rows]
    # More buddy sizes monotonically improve utilization...
    assert pages[0] >= pages[1] >= pages[2] >= pages[3]
    # ...with bounded extra construction cost.
    assert rows[3][2] < 1.5 * rows[0][2]


def test_ablation_slm_gap(ctx, benchmark, record_table):
    """The SLM gap rule: plan the same request sets with different gap
    lengths and compare the planned read cost.  The paper's
    ``l = tl/tt - 1/2 = 5.5`` should be near the sweet spot."""

    params = DiskParameters()

    def planned_cost(requested: list[int], gap: int) -> float:
        runs = slm_schedule(requested, gap)
        cost = 0.0
        for i, (_start, npages) in enumerate(runs):
            cost += (
                params.random_access_ms(npages)
                if i == 0
                else params.continuation_ms(npages)
            )
        return cost

    def run():
        org = build_cluster(ctx, "C-1")
        request_sets: list[list[int]] = []
        for window in ctx.windows("C-1", 1e-4):
            for leaf, entries in org.tree.window_leaves(window):
                unit = leaf.tag
                if unit is None:
                    continue
                oids = [
                    e.oid for e in entries
                    if org.oversize_extent(e.oid) is None
                ]
                if oids:
                    request_sets.append(unit.requested_pages(oids))
        rows = []
        for gap in (1, 2, 4, 6, 12, 24):
            total = sum(planned_cost(req, gap) for req in request_sets)
            rows.append((gap, total / 1000.0))
        return rows

    rows = once(benchmark, run)
    record_table(
        "ablation_slm_gap",
        format_table(
            ["gap l (pages)", "planned read cost (s)"],
            rows,
            title="Ablation — SLM gap length over C-1 0.01% window requests "
                  "(paper rule: l = 6)",
        ),
    )
    costs = {gap: cost for gap, cost in rows}
    # The paper's gap is within a few percent of the best swept value.
    assert costs[6] <= 1.05 * min(costs.values())


def test_ablation_hilbert_loading(ctx, benchmark, record_table):
    """Extension: insert in Hilbert order ([HSW88]/[HWZ91]'s global
    order) instead of the paper's unsorted insertion.  Expected:
    construction I/O drops sharply (consecutive inserts hit
    neighbouring data pages and unit tails) at equal query quality."""

    def run():
        rows = []
        windows = ctx.windows("A-1", 1e-3)
        for order in ("insertion", "hilbert"):
            spec = ctx.config.spec("A-1")
            org = ClusterOrganization(
                policy=ClusterPolicy(spec.smax_bytes),
                construction_buffer_pages=ctx.config.construction_buffer_pages,
            )
            org.build(list(ctx.objects("A-1")), order=order)
            agg = run_window_queries(org, windows)
            rows.append(
                (order, org.construction_io.total_s, org.occupied_pages(),
                 agg.ms_per_4kb)
            )
        return rows

    rows = once(benchmark, run)
    record_table(
        "ablation_hilbert_loading",
        format_table(
            ["insert order", "construction (s)", "occupied pages",
             "0.1% windows (ms/4KB)"],
            rows,
            title="Extension — Hilbert-ordered bulk loading (A-1, cluster org)",
        ),
    )
    plain, hilbert = rows[0], rows[1]
    assert hilbert[1] < 0.8 * plain[1]  # construction clearly cheaper
    assert hilbert[3] < 1.3 * plain[3]  # queries no worse than ~noise


def test_ablation_adaptive_technique(ctx, benchmark, record_table):
    """Extension: the adaptive technique (exact candidate counts) vs
    the paper's geometric threshold, across window sizes on A-1 — the
    series where the geometric estimator misfires (see EXPERIMENTS.md
    on Figure 10)."""

    def run():
        org = build_cluster(ctx, "A-1")
        rows = []
        for area in (1e-5, 1e-4, 1e-3, 1e-2):
            windows = ctx.windows("A-1", area)
            costs = []
            for technique in ("complete", "threshold", "adaptive", "optimum"):
                org.technique = technique
                costs.append(run_window_queries(org, windows).ms_per_4kb)
            org.technique = "complete"
            rows.append((f"{area * 100:g}%", *costs))
        return rows

    rows = once(benchmark, run)
    record_table(
        "ablation_adaptive_technique",
        format_table(
            ["window area", "complete", "threshold", "adaptive", "optimum"],
            rows,
            title="Extension — adaptive read technique vs geometric "
                  "threshold (A-1, ms/4KB)",
        ),
    )
    for _area, complete, threshold, adaptive, optimum in rows:
        # The adaptive decision never loses to either baseline...
        assert adaptive <= min(complete, threshold) * 1.05
        # ...and respects the lower bound.
        assert optimum <= adaptive * 1.001


def test_ablation_parallel_declustering(ctx, benchmark, record_table):
    """Section 7 future work: window-query response time over 1-8 disks
    with round-robin vs spatial declustering."""

    def run():
        org = build_cluster(ctx, "A-1")
        windows = ctx.windows("A-1", 1e-2)
        base = ParallelClusterReader(org, 1).workload_response_ms(windows)
        rows = []
        for n_disks in (1, 2, 4, 8):
            speedups = []
            for policy in ("round_robin", "spatial"):
                reader = ParallelClusterReader(org, n_disks, policy=policy)
                speedups.append(base / reader.workload_response_ms(windows))
            rows.append((n_disks, *speedups))
        return rows

    rows = once(benchmark, run)
    record_table(
        "ablation_parallel_declustering",
        format_table(
            ["disks", "round-robin speedup", "spatial speedup"],
            rows,
            title="Extension — multi-disk declustering (A-1, 1% windows)",
        ),
    )
    # Spatial declustering scales at least as well as round-robin and
    # actually helps beyond one disk.
    for n_disks, rr, spatial in rows:
        assert spatial >= rr * 0.95
        if n_disks >= 4:
            assert spatial > 1.5
