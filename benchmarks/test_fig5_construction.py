"""Figure 5 — I/O cost for constructing the organization models.

Paper shape: the primary organization is by far the most expensive and
grows strongly with the object size; secondary and cluster organization
are of similar cost and nearly independent of the object size (the
cluster organization avoids the forced reinsert and copies whole cluster
units during its splits).
"""

from __future__ import annotations

from repro.eval.construction import format_fig5, run_fig5_construction

from benchmarks.conftest import once

SERIES = ("A-1", "B-1", "C-1", "A-2", "B-2", "C-2")


def test_fig5_construction(ctx, benchmark, record_table):
    rows = once(benchmark, lambda: run_fig5_construction(ctx, SERIES))
    record_table("fig5_construction", format_fig5(rows))

    for row in rows:
        # Primary clearly the most expensive organization to build.
        assert row.primary_s > 1.2 * row.secondary_s, row.series
        assert row.primary_s > 1.1 * row.cluster_s, row.series
        # Secondary and cluster stay within a small factor of each other.
        assert row.cluster_s < 1.6 * row.secondary_s, row.series

    # Primary grows with the object size; secondary/cluster stay flat-ish.
    a1 = next(r for r in rows if r.series == "A-1")
    c1 = next(r for r in rows if r.series == "C-1")
    assert c1.primary_s > 1.1 * a1.primary_s
    assert c1.secondary_s < 2.0 * a1.secondary_s
