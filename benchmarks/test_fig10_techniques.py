"""Figure 10 — query techniques for window queries (cluster org).

Paper shape: for the small cluster units of A-1 all techniques are
within ~12 % of the optimum; for C-1's large units the threshold
technique saves ~15 % and the SLM technique ~27 % on the most selective
queries (optimum: 35 %); from 0.1 % window area upward there is no
significant difference.
"""

from __future__ import annotations

from repro.eval.window import format_fig10, run_fig10_techniques

from benchmarks.conftest import once


def test_fig10_techniques(ctx, benchmark, record_table):
    rows = once(benchmark, lambda: run_fig10_techniques(ctx, ("A-1", "C-1")))
    record_table("fig10_techniques", format_fig10(rows))

    for row in rows:
        per = {t: agg.ms_per_4kb for t, agg in row.per_technique.items()}
        assert per["optimum"] <= min(per.values()) + 1e-9, row

    # C-1, most selective queries: SLM saves clearly over complete.
    c1_small = next(
        r for r in rows if r.series == "C-1" and r.area_fraction == 1e-5
    )
    per = {t: a.ms_per_4kb for t, a in c1_small.per_technique.items()}
    assert per["slm"] < 0.95 * per["complete"]
    assert per["threshold"] <= per["complete"] * 1.02

    # Large windows: no significant difference between the techniques.
    for series in ("A-1", "C-1"):
        big = next(
            r for r in rows if r.series == series and r.area_fraction == 1e-1
        )
        per = {t: a.ms_per_4kb for t, a in big.per_technique.items()}
        assert max(per.values()) < 1.3 * min(per.values()), (series, per)
