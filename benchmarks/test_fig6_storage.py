"""Figure 6 — storage utilization of the organization models.

Paper shape: the secondary organization's byte-packed sequential file
is best; the primary organization pays the R*-tree's ~70 % page fill;
the plain cluster organization is worst because every cluster unit
binds a full ``Smax`` extent.
"""

from __future__ import annotations

from repro.eval.construction import format_fig6, run_fig6_storage

from benchmarks.conftest import once

SERIES = ("A-1", "B-1", "C-1", "A-2", "B-2", "C-2")


def test_fig6_storage(ctx, benchmark, record_table):
    rows = once(benchmark, lambda: run_fig6_storage(ctx, SERIES))
    record_table("fig6_storage", format_fig6(rows))

    for row in rows:
        assert row.secondary_pages < row.primary_pages, row.series
        assert row.primary_pages < row.cluster_pages, row.series
        # The plain cluster organization wastes roughly half its pages.
        assert row.cluster_pages > 1.4 * row.secondary_pages, row.series
