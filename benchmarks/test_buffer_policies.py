"""Ablation — replacement policies of the shared buffer pool.

Beyond the paper: the reproduction's buffer pool accepts pluggable
replacement policies (LRU / CLOCK / FIFO / LRU-K).  This ablation runs
the Sequoia-style mixed query workload of Sections 5.4/5.5 — window
queries whose centers follow the MBR distribution, plus point queries
on the window centers — through one shared pool per policy and compares
hit rates and total I/O.

Expected shape: the recency-based policies (LRU, CLOCK, LRU-K) track
the workload's spatial locality and end up within a few points of each
other, with FIFO trailing; every policy returns identical answers, the
pool only changes pricing.
"""

from __future__ import annotations

from repro.buffer.policy import POLICIES
from repro.buffer.pool import BufferPool
from repro.core.organization import ClusterOrganization
from repro.core.policy import ClusterPolicy
from repro.data.tiger import generate_map
from repro.data.workload import point_workload, window_workload
from repro.eval.config import ExperimentConfig
from repro.eval.report import format_table

from benchmarks.conftest import once


def _run_policy(org, pool, windows, points):
    answers = 0
    before = org.disk.stats()
    with org.use_pool(pool):
        for window in windows:
            answers += len(org.window_query(window).objects)
        for x, y in points:
            answers += len(org.point_query(x, y).objects)
    io = org.disk.stats() - before
    return answers, io, pool.hit_rate


def run_buffer_policy_ablation(buffer_pages: int = 400):
    config = ExperimentConfig(scale=min(0.04, ExperimentConfig().scale))
    spec = config.spec("A-1")
    org = ClusterOrganization(
        policy=ClusterPolicy(spec.smax_bytes), region_prefix="ablation"
    )
    objects = generate_map(spec, seed=config.seed)
    org.build(objects)

    windows = window_workload(
        objects, 1e-3, n_queries=config.n_queries, seed=config.seed + 17
    )
    points = point_workload(windows)

    rows = []
    for policy in POLICIES:
        pool = BufferPool(org.disk, capacity=buffer_pages, policy=policy)
        answers, io, hit_rate = _run_policy(org, pool, windows, points)
        rows.append((policy, answers, hit_rate, io.requests, io.total_ms))
    return rows


def format_buffer_policy_ablation(rows) -> str:
    return format_table(
        ("policy", "answers", "hit rate", "requests", "io ms"),
        [(p, a, f"{h:.1%}", r, ms) for p, a, h, r, ms in rows],
        title="Ablation — buffer replacement policies "
        "(mixed window+point workload, shared 400-page pool)",
    )


def test_buffer_policy_ablation(benchmark, record_table):
    rows = once(benchmark, run_buffer_policy_ablation)
    record_table("ablation_buffer_policy", format_buffer_policy_ablation(rows))

    by_policy = {row[0]: row for row in rows}
    assert set(by_policy) == set(POLICIES)

    # The pool changes pricing, never answers.
    assert len({row[1] for row in rows}) == 1

    for policy, _answers, hit_rate, requests, io_ms in rows:
        assert 0.0 <= hit_rate <= 1.0, policy
        assert requests > 0 and io_ms > 0, policy

    # Warm queries must beat the cold pass-through pricing: every
    # policy's hit rate is well above zero on the clustered workload.
    assert min(row[2] for row in rows) > 0.2

    # Recency-aware LRU never loses to plain FIFO on this workload.
    assert by_policy["lru"][2] >= by_policy["fifo"][2] - 0.02
