"""Benchmark harness plumbing.

One :class:`~repro.eval.ExperimentContext` is shared across all
benchmark modules, so each organization is built at most once per run.
Every figure benchmark prints its paper-shape table and also writes it
to ``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.

Scale is controlled by ``REPRO_SCALE`` (default 0.08 ≈ 10,500 objects
per map); see DESIGN.md for why the figure *shapes* are scale-invariant.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval.context import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext()


@pytest.fixture()
def record_table():
    """Print a result table and persist it under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — repeated rounds
    would only re-measure Python overhead — so every benchmark uses a
    single round/iteration.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
