"""Figure 16 — transfer techniques for join processing (cluster org).

Paper shape: the normal SLM read beats the vector read; reading
complete cluster units wins in most settings (it is the paper's
recommended join technique); with reasonable buffers the cost
approaches the analytic optimum (one seek + one rotational delay per
unit, queried pages transferred once).
"""

from __future__ import annotations

from repro.eval.joins import format_fig16, run_fig16_join_techniques

from benchmarks.conftest import once


def test_fig16_join_techniques(ctx, benchmark, record_table):
    rows = once(benchmark, lambda: run_fig16_join_techniques(ctx))
    record_table("fig16_join_techniques", format_fig16(rows))

    for row in rows:
        per = {t: r.io_s for t, r in row.per_technique.items()}
        # The analytic optimum is a true lower bound.
        assert per["optimum"] <= min(per.values()) + 1e-9, row
        # Normal read vs vector read (Section 6.2), beyond tiny buffers.
        if row.buffer_pages >= 64:
            assert per["read"] <= per["vector"] * 1.1, row

    # "The simplest query technique (reading the complete cluster unit)
    # exhibits the best performance in most cases."
    complete_wins = sum(
        1
        for row in rows
        if row.per_technique["complete"].io_s
        <= min(
            row.per_technique["read"].io_s,
            row.per_technique["vector"].io_s,
        )
        * 1.02
    )
    assert complete_wins >= len(rows) / 2

    # With the largest buffer the cost approaches the optimum.
    for version in ("a", "b"):
        version_rows = [r for r in rows if r.version == version]
        last = max(version_rows, key=lambda r: r.buffer_pages)
        best = min(r.io_s for t, r in last.per_technique.items() if t != "optimum")
        assert best <= 2.0 * last.per_technique["optimum"].io_s, version
