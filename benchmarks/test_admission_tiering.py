"""Ablation — admission control and the tiered page store (PR 5).

Two experiments at the scheduler/pagestore seam:

* **Admission.**  An interactive client (many small windows) and an
  analytics client (few full-space scans) run as interleaved sessions
  over a 4-disk store under the overlap scheduler.  ``priority``
  admission paces the analytics client's dispatch with a stingy token
  bucket; the gap-aware virtual clock lets the interactive operations
  back-fill the idle intervals the paced bulk work leaves behind.
  Acceptance: the interactive p95 latency and queueing delay drop
  below the unadmitted baseline at **bit-identical device time** (the
  priced calls never change — admission only moves virtual dispatch).
* **Tiering.**  A skewed window workload (90 % of the queries hammer a
  hot corner placed away from the construction order's first touches)
  runs over the two-tier store under each migration policy, with a
  fast tier deliberately smaller than the dataset.  Acceptance:
  ``promote-on-hit`` beats ``static`` first-touch placement on both
  device and response time — access statistics find the hot set,
  first-touch cannot.
"""

from __future__ import annotations

import random

from repro.database import SpatialDatabase
from repro.eval.report import format_table
from repro.iosched.admission import PriorityAdmission

from benchmarks.conftest import once

FAST_PAGES = 256
MIGRATIONS = ("none", "static", "promote-on-hit", "lru-demote")


def data_bound(objects) -> float:
    bound = 1.0
    for obj in objects:
        bound = max(bound, obj.mbr.xmax, obj.mbr.ymax)
    return bound


def admission_streams(ctx, series):
    """An interactive client (50 small windows) and an analytics client
    (10 full-space scans)."""
    objects = ctx.objects(series)
    bound = data_bound(objects)
    rng = random.Random(ctx.config.seed + 3)
    ui = []
    for _ in range(50):
        x = rng.uniform(0.0, 0.9 * bound)
        y = rng.uniform(0.0, 0.9 * bound)
        ui.append(("window", x, y, x + 0.06 * bound, y + 0.06 * bound))
    batch = [("window", 0.0, 0.0, bound, bound)] * 10
    return {"ui": ui, "batch": batch}


def skewed_queries(ctx, series, n_queries=150, hot_every=10):
    """90 % of the windows target a hot corner far from the origin —
    the construction order's first-touch pages do *not* cover it."""
    objects = ctx.objects(series)
    bound = data_bound(objects)
    rng = random.Random(ctx.config.seed + 23)
    queries = []
    for i in range(n_queries):
        if i % hot_every != hot_every - 1:
            x = rng.uniform(0.75 * bound, 0.88 * bound)
            y = rng.uniform(0.75 * bound, 0.88 * bound)
        else:
            x = rng.uniform(0.0, 0.9 * bound)
            y = rng.uniform(0.0, 0.9 * bound)
        size = 0.05 * bound
        queries.append((x, y, x + size, y + size))
    return queries


def run_admission(ctx, series="A-1"):
    spec = ctx.config.spec(series)
    rows = []
    for admission in ("none", "priority"):
        db = SpatialDatabase(
            smax_bytes=spec.smax_bytes,
            n_disks=4,
            scheduler="overlap",
            construction_buffer_pages=ctx.config.construction_buffer_pages,
        )
        db.build(ctx.objects(series))
        policy = None
        if admission == "priority":
            policy = PriorityAdmission(
                classes={"batch": "analytics"}, rate=0.25, burst_ms=10.0
            )
        report = db.run_sessions(
            admission_streams(ctx, series), buffer_pages=64, admission=policy
        )
        ui = report.client("ui")
        batch = report.client("batch")
        rows.append(
            (
                admission,
                report.total_io.total_ms / 1000.0,
                ui.p95_ms,
                ui.queueing_ms / 1000.0,
                batch.p95_ms,
                report.makespan_ms / 1000.0,
            )
        )
    return rows


def run_tiering(ctx, series="A-1"):
    spec = ctx.config.spec(series)
    queries = skewed_queries(ctx, series)
    rows = []
    for migration in MIGRATIONS:
        db = SpatialDatabase(
            smax_bytes=spec.smax_bytes,
            tiering=None if migration == "none" else migration,
            fast_pages=FAST_PAGES,
            construction_buffer_pages=ctx.config.construction_buffer_pages,
        )
        db.build(ctx.objects(series))
        mark = db.disk.snapshot()
        answers = 0
        for window in queries:
            answers += len(db.window_query(*window).objects)
        cost = db.disk.cost_since(mark)
        rows.append(
            (
                migration,
                cost.total_ms / 1000.0,
                cost.response_ms / 1000.0,
                getattr(db.disk, "promotions", 0),
                getattr(db.disk, "demotions", 0),
                answers,
            )
        )
    return rows


def test_admission_tiering(ctx, benchmark, record_table):
    """Acceptance: priority admission cuts the interactive client's p95
    latency at identical device time; promote-on-hit tiering beats
    static placement on the skewed workload."""

    def run():
        return run_admission(ctx), run_tiering(ctx)

    admission_rows, tiering_rows = once(benchmark, run)

    parts = [
        format_table(
            ["admission", "device (s)", "ui p95 (ms)", "ui queue (s)",
             "batch p95 (ms)", "makespan (s)"],
            admission_rows,
            title="Ablation — priority admission "
                  "(A-1, interactive + analytics clients, 4 disks, "
                  "64-page pool)",
        ),
        format_table(
            ["migration", "device (s)", "response (s)", "promotions",
             "demotions", "answers"],
            tiering_rows,
            title="Ablation — tiered page store "
                  f"(A-1, skewed windows, {FAST_PAGES}-page fast tier)",
        ),
    ]
    record_table("ablation_admission_tiering", "\n\n".join(parts))

    by_admission = {r[0]: r for r in admission_rows}
    none, priority = by_admission["none"], by_admission["priority"]
    # Admission never changes what is priced: device time is identical.
    assert priority[1] == none[1]
    # The acceptance bar: the interactive tail and queueing delay drop.
    assert priority[2] < none[2]
    assert priority[3] < none[3]
    # The flip side: the paced analytics client waits longer.
    assert priority[4] > none[4]

    by_migration = {r[0]: r for r in tiering_rows}
    static, promote = by_migration["static"], by_migration["promote-on-hit"]
    # Migration policies never change answers.
    assert len({r[5] for r in tiering_rows}) == 1
    # The acceptance bar: access-driven promotion beats first-touch
    # placement on both device and response time.
    assert promote[1] < static[1]
    assert promote[2] < static[2]
    assert promote[3] > 0 and static[3] == 0
    # And any tier beats the flat single disk on this hot workload.
    assert static[1] < by_migration["none"][1]
