"""Figure 11 — performance gains by adapting the cluster size (B-1).

Paper shape: re-tuning the cluster size after the window area changes
by a factor of 100 recovers ~23 % with the simplest (complete-unit)
technique, but only ~6.5 % (threshold) / ~11 % (SLM) with the smarter
techniques — "an adaptation does not seem to be essential".
"""

from __future__ import annotations

from repro.eval.adaptation import format_fig11, run_fig11_adaptation

from benchmarks.conftest import once


def test_fig11_adaptation(ctx, benchmark, record_table):
    results = once(benchmark, lambda: run_fig11_adaptation(ctx))
    record_table("fig11_adaptation", format_fig11(results))

    by_technique = {r.technique: r for r in results}
    for r in results:
        assert 0.0 <= r.gain_factor_10 <= 60.0, r
        assert 0.0 <= r.gain_factor_100 <= 60.0, r
        # A bigger workload shift leaves more on the table.
        assert r.gain_factor_100 >= r.gain_factor_10 - 3.0, r

    # The sophisticated techniques depend less on the cluster size than
    # the simplest one (the paper's core message for this figure).
    smart_gain = max(
        by_technique["threshold"].gain_factor_100,
        by_technique["slm"].gain_factor_100,
    )
    assert smart_gain <= by_technique["complete"].gain_factor_100 + 5.0
