"""Table 1 — the maps and the test series.

Regenerates the dataset-characteristics table and checks the synthetic
maps hit the paper's per-series object sizes.
"""

from __future__ import annotations

from repro.eval.table1 import format_table1, run_table1

from benchmarks.conftest import once


def test_table1_datasets(ctx, benchmark, record_table):
    rows = once(benchmark, lambda: run_table1(ctx))
    record_table("table1_datasets", format_table1(rows, ctx.config.scale))

    assert len(rows) == 6
    for row in rows:
        # Average object sizes match Table 1 (counts are scaled).
        assert abs(row.measured_avg_size - row.paper_avg_size) <= (
            0.1 * row.paper_avg_size
        ), row.key
