"""Figure 8 — window queries across the organization models.

Paper shape: normalised I/O cost (ms per 4 KB of queried data) of the
cluster organization falls sharply with the window size — speed-up
factors versus the secondary organization reach ~20 for the small-object
series A-1 and ~12.5 for the large-object series C-1 — while the
primary organization lands between the two and profits most from small
objects.
"""

from __future__ import annotations

from repro.data.workload import PAPER_WINDOW_AREAS
from repro.eval.window import format_fig8, run_fig8_windows

from benchmarks.conftest import once


def test_fig8_window_queries(ctx, benchmark, record_table):
    rows = once(benchmark, lambda: run_fig8_windows(ctx, ("A-1", "C-1")))
    record_table("fig8_window_queries", format_fig8(rows))

    by_series: dict[str, list] = {}
    for row in rows:
        by_series.setdefault(row.series, []).append(row)

    for series, series_rows in by_series.items():
        series_rows.sort(key=lambda r: r.area_fraction)
        speedups = [r.speedup_vs_secondary for r in series_rows]
        # Monotone benefit: bigger windows, bigger win (allowing noise).
        assert speedups[-1] > speedups[0], series
        # Large windows: clearly accelerated.
        assert speedups[-1] > 6.0, (series, speedups)
        # The cluster organization never collapses for point-like windows.
        assert speedups[0] > 0.5, (series, speedups)

    # A-1 (small objects) gains more than C-1, as in the paper (20 vs 12.5).
    assert max(r.speedup_vs_secondary for r in by_series["A-1"]) > max(
        r.speedup_vs_secondary for r in by_series["C-1"]
    )

    # The primary organization sits between secondary and cluster for
    # large windows.
    for series_rows in by_series.values():
        big = series_rows[-1]
        assert (
            big.per_org["cluster"].ms_per_4kb
            < big.per_org["primary"].ms_per_4kb
            < big.per_org["secondary"].ms_per_4kb
        )

    assert set(r.area_fraction for r in rows) == set(PAPER_WINDOW_AREAS)
