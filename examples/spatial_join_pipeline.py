"""Spatial join pipeline: streets x rivers/boundaries, step by step.

Reproduces the setting of the paper's Section 6 with the public API:
two relations (a street map and a boundary/river/rail map) live on one
simulated disk; the intersection join runs in the three steps of
[BKSS94] — MBR join, object transfer, exact geometry test — and the
cost breakdown shows where global clustering strikes.

Run with::

    python examples/spatial_join_pipeline.py [scale]
"""

from __future__ import annotations

import sys

from repro import SpatialDatabase
from repro.data import generate_map, scaled, spec_for
from repro.eval.report import format_table


def build_pair(organization: str, objects_r, objects_s):
    db_r = SpatialDatabase(
        organization=organization,
        avg_object_size=2490,
        name=f"{organization}-streets",
    )
    db_s = db_r.attach(
        f"{organization}-rivers",
        organization=organization,
        avg_object_size=3113,
    )
    db_r.build(objects_r)
    db_s.build(objects_s)
    return db_r, db_s


def main(scale: float = 0.02) -> None:
    spec_r = scaled(spec_for("C-1"), scale)
    spec_s = scaled(spec_for("C-2"), scale)
    print(f"generating {spec_r.n_objects} streets and "
          f"{spec_s.n_objects} boundaries/rivers/rails ...")
    objects_r = generate_map(spec_r, seed=1994)
    objects_s = generate_map(spec_s, seed=1994, id_offset=10_000_000)

    rows = []
    for organization in ("secondary", "cluster"):
        db_r, db_s = build_pair(organization, objects_r, objects_s)
        result = db_r.join(db_s, buffer_pages=1600, evaluate_exact=True)
        rows.append(
            (
                organization,
                result.candidate_pairs,
                result.result_pairs,
                result.mbr_io.total_s,
                result.transfer_io.total_s,
                result.exact_ms / 1000.0,
                result.total_ms / 1000.0,
            )
        )
        print(f"{organization}: join done "
              f"(buffer hit rate {result.buffer_hit_rate:.0%})")

    print()
    print(
        format_table(
            ["organization", "MBR pairs", "exact pairs", "MBR-join (s)",
             "transfer (s)", "exact test (s)", "total (s)"],
            rows,
            title="complete intersection join, cost per step (Figure 17)",
        )
    )
    sec_total, clu_total = rows[0][-1], rows[1][-1]
    print(f"\nglobal clustering speeds the complete join up "
          f"{sec_total / clu_total:.1f}x — the paper reports ~4x.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
