"""A spatial database over a sharded multi-disk page store.

Where ``parallel_clustering.py`` declusters one built organization with
a dedicated reader, this example turns on parallelism for the *whole*
database: ``SpatialDatabase(n_disks=..., placement="spatial")`` puts a
:class:`~repro.pagestore.store.ShardedPageStore` behind the buffer
pool, so construction, window queries, point queries and the workload
engine all run declustered — and every measurement separates the
device time consumed from the response time observed.

Run with::

    python examples/sharded_database.py [scale]
"""

from __future__ import annotations

import sys

from repro import SpatialDatabase, mixed_stream
from repro.data import generate_map, scaled, spec_for, window_workload
from repro.eval.report import format_table


def main(scale: float = 0.02) -> None:
    spec = scaled(spec_for("A-1"), scale)
    objects = generate_map(spec, seed=1994)
    windows = window_workload(objects, 1e-2, n_queries=40, seed=11)

    rows = []
    for n_disks in (1, 2, 4, 8):
        db = SpatialDatabase(
            smax_bytes=spec.smax_bytes, n_disks=n_disks, placement="spatial"
        )
        print(f"building on {n_disks} disk(s) ...")
        db.build(objects)
        # One measure() per query: each query is a parallel batch, the
        # queries themselves arrive serially (the same model the
        # `repro.eval pagestore` subcommand and the benchmarks use).
        device = response = 0.0
        for window in windows:
            with db.disk.measure() as cost:
                db.storage.window_query(window)
            device += cost.total_ms
            response += cost.response_ms
        rows.append((n_disks, device, response, device / response))

    print()
    print(
        format_table(
            ["disks", "device ms", "response ms", "parallelism"],
            rows,
            title="1% window queries, whole stack behind the sharded store",
        )
    )

    # The workload engine reports the same split per phase.
    db = SpatialDatabase(
        smax_bytes=spec.smax_bytes, n_disks=4, placement="spatial"
    )
    db.build(objects)
    stream = mixed_stream(objects, n_windows=20, n_points=20, seed=7)
    print()
    print(db.run_workload(stream, buffer_pages=400).format())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
