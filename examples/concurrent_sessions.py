"""Concurrent client sessions over the request-based I/O pipeline.

Two clients hit one 4-disk spatial database at the same time: an
interactive client streaming window queries, and an analytics client
that runs point queries and finishes with a spatial join against a
second relation on the same disks.  Their operation streams are
interleaved deterministically by the workload engine; every read path
emits declarative access plans, and the I/O scheduler decides how the
disks service them:

* ``scheduler="sync"`` — the paper's pricing: plans execute
  immediately, the workload's makespan is the serial sum of responses;
* ``scheduler="overlap"`` — simulated asynchronous I/O on a virtual
  clock: each operation's plans dispatch together, queue per disk, and
  overlap across the two clients, so declustered arms serve both
  sessions concurrently;
* ``prefetch="cluster"`` — cluster-unit-aware read-ahead rides along
  on non-blocking plans.

Run with::

    python examples/concurrent_sessions.py [scale]
"""

from __future__ import annotations

import sys

from repro import SpatialDatabase, mixed_stream
from repro.data import generate_map, scaled, spec_for
from repro.eval.report import format_table


def build_database(spec, objects, join_objects, scheduler, prefetch):
    db = SpatialDatabase(
        smax_bytes=spec.smax_bytes,
        n_disks=4,
        placement="spatial",
        scheduler=scheduler,
        prefetch=prefetch,
        name="r",
    )
    db.build(objects)
    # The joined relation shares the disks and the virtual clock.
    other = db.attach("s", smax_bytes=spec.smax_bytes)
    other.build(join_objects)
    return db, other


def client_streams(objects, other):
    interactive = mixed_stream(objects, n_windows=30, n_points=0, seed=41)
    analytics = mixed_stream(
        objects, n_windows=0, n_points=30, join_with=other, seed=42
    )
    return {"interactive": interactive, "analytics": analytics}


def main(scale: float = 0.02) -> None:
    spec = scaled(spec_for("A-1"), scale)
    objects = generate_map(spec, seed=1994)
    join_objects = generate_map(
        scaled(spec_for("A-2"), scale), seed=1994, id_offset=10_000_000
    )

    rows = []
    last_report = None
    for scheduler, prefetch in (
        ("sync", None),
        ("overlap", None),
        ("overlap", "cluster"),
    ):
        label = f"{scheduler}+{prefetch or 'none'}"
        print(f"running {label} ...")
        db, other = build_database(
            spec, objects, join_objects, scheduler, prefetch
        )
        report = db.run_sessions(
            client_streams(objects, other), buffer_pages=400
        )
        last_report = report
        rows.append(
            (
                scheduler,
                prefetch or "none",
                f"{report.hit_rate:.1%}",
                report.total_io.total_ms,
                report.total_response_ms,
                report.makespan_ms,
            )
        )

    print()
    print(
        format_table(
            [
                "scheduler",
                "prefetch",
                "hit rate",
                "device ms",
                "client response ms",
                "makespan ms",
            ],
            rows,
            title="window client + join client, 4 disks, 400-page pool",
        )
    )
    print()
    print("last configuration in detail:")
    print()
    print(last_report.format())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
