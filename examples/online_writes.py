"""Online writes and background reorganization.

Every write in the system — organization stores, R*-tree node flushes,
dirty-page evictions, checkpoint flushes — is a declarative write
:class:`~repro.iosched.request.AccessPlan`, executed by the same I/O
schedulers that serve reads.  That makes the database *online*: inserts
and deletes run under any scheduler/declustering/tiering configuration
with every written page priced, traced and metered (``write.pages``,
``write.device_ms``).

This example walks the full loop:

1. build a cluster database on 4 declustered disks under the overlap
   scheduler;
2. serve mixed read/write traffic (window and point queries plus
   online inserts and deletes);
3. the deletes degrade the clustering — dead space accumulates in the
   cluster units, so window queries pay for pages holding no live
   object;
4. a :class:`~repro.reorg.Reorganizer` repairs the damage *in the
   background*: its rounds run as ``ana-reorg-`` traffic sessions,
   paced by priority admission like any other analytics client;
5. the before/after comparison shows clustering quality recovering and
   the foreground p95 while the ``reorg.*`` metrics account the moved
   pages.

Run with::

    python examples/online_writes.py [scale]
"""

from __future__ import annotations

import sys

from repro import SpatialDatabase
from repro.data import generate_map, scaled, spec_for
from repro.eval.report import format_table
from repro.iosched.admission import PriorityAdmission
from repro.reorg import Reorganizer, reorg_traffic
from repro.workload.traffic import class_of_session, make_traffic


def main(scale: float = 0.04) -> None:
    spec = scaled(spec_for("A-1"), scale)
    objects = generate_map(spec, seed=1994)

    db = SpatialDatabase(
        smax_bytes=spec.smax_bytes,
        n_disks=4,
        scheduler="overlap",
    )
    db.build(objects)
    print(f"built: {len(objects)} objects on {db.n_disks} disks")

    # -- serve mixed read/write traffic, then degrade clustering -------
    # Online deletes leave dead space behind: cluster-unit compaction
    # is lazy, so the units keep paying for pages of removed objects.
    doomed = [o.oid for i, o in enumerate(objects) if i % 2 == 0]
    survivors = [o for i, o in enumerate(objects) if i % 2 != 0]
    for oid in doomed:
        db.delete(oid)

    reorg = Reorganizer(db, budget_pages=64)
    degraded = reorg.quality()
    print(
        f"deleted {len(doomed)} objects online: clustering quality "
        f"dropped to {degraded:.3f} (live fraction of unit pages)"
    )

    # -- run the same foreground traffic without and with reorg --------
    rows = []
    results = {}
    for with_reorg in (False, True):
        run_db = db
        run_reorg = reorg
        if not with_reorg:
            # A twin database, identically degraded, as the baseline.
            run_db = SpatialDatabase(
                smax_bytes=spec.smax_bytes, n_disks=4, scheduler="overlap"
            )
            run_db.build(objects)
            for oid in doomed:
                run_db.delete(oid)
            run_reorg = Reorganizer(run_db, budget_pages=64)

        traffic = make_traffic(
            survivors, 800, rate_per_s=200.0, seed=2023
        )
        sessions = list(traffic)
        if with_reorg:
            span = max(s.arrival_ms for s in traffic)
            sessions += reorg_traffic(reorg, rounds=30, period_ms=span / 30)

        report = run_db.run_traffic(
            sessions,
            buffer_pages=512,
            admission=PriorityAdmission(classifier=class_of_session),
        )
        inter = report.traffic_class("interactive")
        rows.append(
            (
                "with reorg" if with_reorg else "no reorg",
                f"{degraded:.3f}",
                f"{run_reorg.quality():.3f}",
                run_reorg.moved_pages,
                run_reorg.runs,
                round(inter.p95_ms if inter else 0.0, 2),
            )
        )
        results[with_reorg] = report

    print()
    print(
        format_table(
            ["run", "quality before", "quality after", "moved pages",
             "rounds", "interactive p95 (ms)"],
            rows,
            title="background reorganization under foreground traffic",
        )
    )

    # -- the write pipeline's own metrics ------------------------------
    print()
    snap = db.metrics.snapshot()
    for key in sorted(snap):
        if key.startswith(("reorg.", "write.")):
            print(f"  {key} = {snap[key]:,.2f}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.04)
