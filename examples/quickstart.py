"""Quickstart: build a clustered spatial database, run the basic queries.

This example exercises the public :class:`repro.SpatialDatabase` API on
a handful of hand-made map features: insert, point query, window query,
deletion, and the simulated I/O statistics that the whole library is
about.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SpatialDatabase


def main() -> None:
    # A cluster-organized database; Smax is derived from the expected
    # average object size with the paper's rule Smax = 1.5 * M * S_obj.
    db = SpatialDatabase(organization="cluster", avg_object_size=625)

    # A miniature street map: a main road, two side streets, a river.
    db.insert_polyline(1, [(0, 50), (40, 52), (90, 49), (160, 55)])   # main road
    db.insert_polyline(2, [(30, 52), (32, 90), (31, 130)])            # side street
    db.insert_polyline(3, [(70, 50), (68, 10), (71, -30)])            # side street
    db.insert_polyline(4, [(-20, 80), (35, 70), (95, 75), (170, 60)]) # river
    db.finalize()

    print(f"database holds {len(db)} objects "
          f"on {db.occupied_pages()} simulated disk pages")

    # Window query: everything sharing points with the rectangle.
    result = db.window_query(20, 40, 80, 80)
    print("\nwindow (20,40)-(80,80):")
    for obj in result.objects:
        print(f"  object {obj.oid}  mbr={obj.mbr.as_tuple()}")
    print(f"  filter candidates: {result.candidates}, "
          f"exact tests: {result.exact_tests}, "
          f"I/O: {result.io.total_ms:.1f} ms")

    # Point query: objects geometrically containing the point.
    result = db.point_query(32.0, 90.0)
    print("\npoint (32, 90):", [o.oid for o in result.objects])

    # The database stays fully dynamic: delete and re-query.
    db.delete(2)
    result = db.window_query(20, 40, 80, 80)
    print("\nafter deleting object 2:", [o.oid for o in result.objects])

    stats = db.io_stats()
    print(f"\ncumulative simulated I/O: {stats.total_ms:.1f} ms "
          f"({stats.requests} requests, {stats.pages_transferred} pages, "
          f"{stats.seeks} seeks)")

    tree = db.tree_stats()
    print(f"R*-tree: height={tree.height}, data pages={tree.leaf_count}, "
          f"avg fill={tree.avg_leaf_fill:.0%}")


if __name__ == "__main__":
    main()
