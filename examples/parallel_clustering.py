"""Parallel cluster organization over a multi-disk system.

The paper closes with its future work (Section 7): exploit parallelism
by declustering the cluster organization over multiple disks.  This
example builds a clustered street database, declusters its cluster
units over 1-8 disks with two policies, and reports how the window
query response time scales.

Run with::

    python examples/parallel_clustering.py [scale]
"""

from __future__ import annotations

import sys

from repro.core.organization import ClusterOrganization
from repro.core.policy import ClusterPolicy
from repro.data import generate_map, scaled, spec_for, window_workload
from repro.eval.report import format_table
from repro.parallel import ParallelClusterReader


def main(scale: float = 0.02) -> None:
    spec = scaled(spec_for("A-1"), scale)
    print(f"building a cluster organization over {spec.n_objects} streets ...")
    objects = generate_map(spec, seed=1994)
    org = ClusterOrganization(policy=ClusterPolicy(spec.smax_bytes))
    org.build(objects)

    windows = window_workload(objects, 1e-2, n_queries=40, seed=11)
    baseline = ParallelClusterReader(org, 1).workload_response_ms(windows)

    rows = []
    for n_disks in (1, 2, 4, 8):
        row = [n_disks]
        for policy in ("round_robin", "spatial"):
            reader = ParallelClusterReader(org, n_disks, policy=policy)
            response = reader.workload_response_ms(windows)
            row.append(baseline / response)
        rows.append(tuple(row))

    print()
    print(
        format_table(
            ["disks", "round-robin speedup", "spatial speedup"],
            rows,
            title="window-query response-time speedup (1% windows)",
        )
    )
    print(
        "\nSpatial declustering places adjacent cluster units on different "
        "disks, so exactly the units a\nwindow query co-accesses are read "
        "in parallel — the direction the paper sketches in Section 7."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
