"""Admission control and tiered storage behind one spatial database.

Part 1 — admission.  An interactive client (small window queries) and
an analytics client (full-space scans) share a 4-disk database under
the overlap scheduler.  Without admission, the analytics scans flood
the disk queues and the interactive latency tail explodes.  With
``priority`` admission, the analytics client's dispatch is paced by a
token bucket on its consumed device time; the gap-aware virtual clock
lets interactive operations back-fill the idle intervals, so their p95
latency collapses — while the priced device time stays bit-identical
(admission only moves *when* the virtual clock services requests,
never *what* is priced).

Part 2 — tiering.  The same database class can put a
``TieredPageStore`` behind the buffer pool: a small fast tier (2 / 1 /
0.25 ms) in front of the paper's 9 / 6 / 1 ms capacity disk.  On a
skewed workload, first-touch ``static`` placement wastes the fast tier
on construction-order pages, while ``promote-on-hit`` migration finds
the hot set from the access statistics.

Run with::

    python examples/admission_tiering.py [scale]
"""

from __future__ import annotations

import random
import sys

from repro import SpatialDatabase
from repro.data import generate_map, scaled, spec_for
from repro.eval.report import format_table
from repro.iosched.admission import PriorityAdmission


def build_objects(scale: float):
    spec = scaled(spec_for("A-1"), scale)
    objects = generate_map(spec, seed=1994)
    bound = 1.0
    for obj in objects:
        bound = max(bound, obj.mbr.xmax, obj.mbr.ymax)
    return spec, objects, bound


def admission_demo(spec, objects, bound) -> None:
    rng = random.Random(7)
    ui = []
    for _ in range(40):
        x = rng.uniform(0.0, 0.9 * bound)
        y = rng.uniform(0.0, 0.9 * bound)
        ui.append(("window", x, y, x + 0.06 * bound, y + 0.06 * bound))
    batch = [("window", 0.0, 0.0, bound, bound)] * 8

    rows = []
    for admission in (None, "priority"):
        db = SpatialDatabase(
            smax_bytes=spec.smax_bytes, n_disks=4, scheduler="overlap"
        )
        db.build(objects)
        policy = admission and PriorityAdmission(
            classes={"batch": "analytics"}, rate=0.25, burst_ms=10.0
        )
        report = db.run_sessions(
            {"ui": list(ui), "batch": list(batch)},
            buffer_pages=64,
            admission=policy,
        )
        interactive = report.client("ui")
        rows.append(
            (
                report.admission,
                report.total_io.total_ms,
                interactive.p95_ms,
                interactive.queueing_ms,
                report.client("batch").p95_ms,
            )
        )
    print(
        format_table(
            ("admission", "device ms", "ui p95 ms", "ui queue ms", "batch p95 ms"),
            rows,
            title="priority admission: same device time, smaller "
                  "interactive tail",
        )
    )


def tiering_demo(spec, objects, bound) -> None:
    rng = random.Random(23)
    queries = []
    for i in range(100):
        if i % 10 < 9:  # hot corner away from the construction order
            x = rng.uniform(0.75 * bound, 0.88 * bound)
            y = rng.uniform(0.75 * bound, 0.88 * bound)
        else:
            x = rng.uniform(0.0, 0.9 * bound)
            y = rng.uniform(0.0, 0.9 * bound)
        size = 0.05 * bound
        queries.append((x, y, x + size, y + size))

    rows = []
    for migration in ("none", "static", "promote-on-hit", "lru-demote"):
        db = SpatialDatabase(
            smax_bytes=spec.smax_bytes,
            tiering=None if migration == "none" else migration,
            fast_pages=256,
        )
        db.build(objects)
        mark = db.disk.snapshot()
        for window in queries:
            db.window_query(*window)
        cost = db.disk.cost_since(mark)
        rows.append(
            (
                migration,
                cost.total_ms,
                cost.response_ms,
                getattr(db.disk, "promotions", 0),
                getattr(db.disk, "demotions", 0),
            )
        )
    print(
        format_table(
            ("migration", "device ms", "response ms", "promotions", "demotions"),
            rows,
            title="tiered store on a skewed workload (256-page fast tier)",
        )
    )


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    spec, objects, bound = build_objects(scale)
    print(f"{len(objects)} objects (scale {scale})\n")
    admission_demo(spec, objects, bound)
    print()
    tiering_demo(spec, objects, bound)
    return 0


if __name__ == "__main__":
    sys.exit(main())
