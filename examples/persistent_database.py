"""Build, save, crash, and reopen a durable spatial database.

Part 1 — save/open.  A cluster-organized database is built in memory,
checkpointed into a single-file page image with ``db.save(path)``
(checksummed pages, catalog, shadow-superblock commit), and reopened
two ways: ``backing="sim"`` rebuilds over a fresh simulated disk with
the saved timing constants, ``backing="file"`` keeps the file live so
every priced read is also a real, checksum-verified ``pread``.  Both
twins must answer a window-query battery identically — and at exactly
the same simulated cost — as the database that was saved.

Part 2 — crash.  An incremental re-save (after a batch of inserts) is
killed mid-flush by the deterministic fault-injection store: a torn
write persists half a page, then the "process dies".  Reopening the
file recovers the last *committed* epoch — the inserts are gone, the
old answers are intact, and a scrub proves no committed page was
harmed.  A persistently flipped byte, by contrast, must surface as
``PageCorruptionError`` rather than a wrong answer.

Run with::

    python examples/persistent_database.py [scale]
"""

from __future__ import annotations

import os
import random
import shutil
import sys
import tempfile

from repro import SpatialDatabase
from repro.data import generate_map, scaled, spec_for
from repro.errors import PageCorruptionError
from repro.pagestore import FaultyPageStore, SimulatedCrash, flip_byte


def answers(db, windows):
    out = []
    for window in windows:
        db.disk.invalidate_head()
        res = db.window_query(*window)
        out.append((sorted(o.oid for o in res.objects), res.io.total_ms))
    return out


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    spec = scaled(spec_for("A-1"), scale)
    objects = generate_map(spec, seed=1994)
    bound = max(max(o.mbr.xmax for o in objects), max(o.mbr.ymax for o in objects))
    rng = random.Random(7)
    windows = []
    for _ in range(12):
        x, y = rng.uniform(0, 0.85 * bound), rng.uniform(0, 0.85 * bound)
        windows.append((x, y, x + 0.12 * bound, y + 0.12 * bound))

    tmpdir = tempfile.mkdtemp(prefix="repro-example-")
    path = os.path.join(tmpdir, "spatial.db")
    try:
        # -- Part 1: build, save, reopen ------------------------------
        db = SpatialDatabase(smax_bytes=spec.smax_bytes)
        db.build(objects)
        committed = answers(db, windows)
        epoch = db.save(path)
        print(f"saved {len(db)} objects -> {path}")
        print(f"  epoch {epoch}, {os.path.getsize(path) // 4096} file pages")

        twin = SpatialDatabase.open(path)  # simulated backing
        assert answers(twin, windows) == committed
        print("reopened (sim backing): answers and priced I/O identical")

        live = SpatialDatabase.open(path, backing="file")
        print(f"reopened (file backing): scrubbed {live.disk.scrub()} pages")
        assert answers(live, windows) == committed
        print("  real checksum-verified preads, identical answers + pricing")
        live.close()

        # -- Part 2: crash mid-save, recover --------------------------
        for i in range(8):
            x = (i + 1) * 0.09 * bound
            db.insert_polyline(10_000 + i, [(x, x), (x * 1.05, x * 1.05)])
        store = FaultyPageStore(path, crash_after_writes=3, torn=True)
        try:
            db.save(path, store=store)
        except SimulatedCrash as crash:
            print(f"\ncrash injected: {crash}")
        finally:
            store.close()

        recovered = SpatialDatabase.open(path)
        assert answers(recovered, windows) == committed
        assert len(recovered) == len(objects)  # the inserts rolled back
        print("reopened after the crash: last committed epoch intact,")
        print(f"  {len(recovered)} objects (the {8} uncommitted inserts are gone)")

        # -- Part 3: persistent corruption is detected ----------------
        mangled = os.path.join(tmpdir, "mangled.db")
        shutil.copyfile(path, mangled)
        flip_byte(mangled, slot=2, page_size=4096)
        damaged = SpatialDatabase.open(mangled, backing="file")
        try:
            damaged.disk.scrub()
            raise AssertionError("scrub missed the flipped byte")
        except PageCorruptionError as err:
            print(f"\nbit flip detected, never silently served: {err}")
        finally:
            damaged.close()
        return 0
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
