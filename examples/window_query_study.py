"""Window-query study: why global clustering wins on large requests.

Rebuilds the heart of the paper's Figure 8 on a synthetic street map:
the same workload runs against the secondary, primary and cluster
organizations, and the normalised I/O cost (milliseconds per 4 KB of
retrieved data) is reported per window size, together with the cluster
organization's speed-up.

Run with::

    python examples/window_query_study.py [scale]

where ``scale`` (default 0.02) is the fraction of the paper's 131,461
street objects to generate.
"""

from __future__ import annotations

import sys

from repro.core.policy import ClusterPolicy
from repro.core.organization import ClusterOrganization
from repro.data import generate_map, scaled, spec_for, window_workload
from repro.eval.metrics import run_window_queries
from repro.eval.report import format_table
from repro.storage.primary import PrimaryOrganization
from repro.storage.secondary import SecondaryOrganization

WINDOW_AREAS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)


def main(scale: float = 0.02) -> None:
    spec = scaled(spec_for("A-1"), scale)
    print(f"generating {spec.n_objects} street objects "
          f"(series A-1 at scale {scale}) ...")
    objects = generate_map(spec, seed=1994)

    organizations = []
    for cls, kwargs in (
        (SecondaryOrganization, {}),
        (PrimaryOrganization, {}),
        (ClusterOrganization, {"policy": ClusterPolicy(spec.smax_bytes)}),
    ):
        org = cls(**kwargs)
        org.build(objects)
        organizations.append(org)
        print(f"built {org.name:10s} organization: "
              f"{org.occupied_pages():6d} pages, "
              f"construction I/O {org.construction_io.total_s:8.1f} s")

    rows = []
    for area in WINDOW_AREAS:
        windows = window_workload(objects, area, n_queries=60, seed=7)
        costs = {
            org.name: run_window_queries(org, windows) for org in organizations
        }
        speedup = (
            costs["secondary"].ms_per_4kb / costs["cluster"].ms_per_4kb
        )
        rows.append(
            (
                f"{area * 100:g}%",
                costs["secondary"].ms_per_4kb,
                costs["primary"].ms_per_4kb,
                costs["cluster"].ms_per_4kb,
                speedup,
                costs["cluster"].answers_per_query,
            )
        )

    print()
    print(
        format_table(
            ["window area", "secondary", "primary", "cluster",
             "speedup", "answers/query"],
            rows,
            title="normalised window-query I/O cost (ms per 4 KB of data)",
        )
    )
    print(
        "\nThe larger the window, the harder the secondary organization's "
        "one-seek-per-object pattern hurts,\nwhile the cluster organization "
        "streams whole cluster units — the paper's headline result."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
